package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment writes a clean segment holding the given payloads and
// returns the file bytes plus each record's end offset within the file.
func buildSegment(t *testing.T, dir string, payloads [][]byte) (data []byte, ends []int) {
	t.Helper()
	data = appendSegmentHeader(nil)
	for _, p := range payloads {
		data = AppendRecord(data, 1, p)
		ends = append(ends, len(data))
	}
	if err := os.WriteFile(segmentPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data, ends
}

// replayPayloads replays dir and returns the delivered payloads.
func replayPayloads(t *testing.T, dir string) [][]byte {
	t.Helper()
	var got [][]byte
	if _, err := Replay(dir, func(_ uint64, _ byte, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

// isPrefix reports whether got is a strict positional prefix of want.
func isPrefix(got, want [][]byte) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return false
		}
	}
	return true
}

func propertyPayloads() [][]byte {
	payloads := make([][]byte, 30)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("rec-%02d-%s", i, bytes.Repeat([]byte{'a' + byte(i%26)}, i%23)))
	}
	return payloads
}

// TestTruncateEveryOffset truncates the final segment at every byte
// offset and asserts exact recovery semantics: the records whose frames
// are fully within the kept prefix are delivered, in order; nothing
// past the cut is invented; Replay never errors.
func TestTruncateEveryOffset(t *testing.T) {
	payloads := propertyPayloads()
	base := t.TempDir()
	data, ends := buildSegment(t, base, payloads)
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// The committed prefix: every record whose frame ends at or
		// before the cut.
		wantN := 0
		for wantN < len(ends) && ends[wantN] <= cut {
			wantN++
		}
		got := replayPayloads(t, dir)
		if len(got) != wantN || !isPrefix(got, payloads) {
			t.Fatalf("cut %d: recovered %d records, want exactly the %d-record prefix", cut, len(got), wantN)
		}
	}
}

// TestCorruptEveryByte flips every byte of the final segment (one at a
// time) and asserts the safety property: recovery yields a positional
// prefix of the committed records — never an error, never a phantom or
// altered record.
func TestCorruptEveryByte(t *testing.T) {
	payloads := propertyPayloads()
	base := t.TempDir()
	data, _ := buildSegment(t, base, payloads)
	dir := t.TempDir()
	path := segmentPath(dir, 1)
	mutated := make([]byte, len(data))
	for off := 0; off < len(data); off++ {
		copy(mutated, data)
		mutated[off] ^= 0xff
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayPayloads(t, dir)
		if !isPrefix(got, payloads) {
			t.Fatalf("corrupt byte %d: recovered records are not a prefix of the committed log", off)
		}
	}
}

// TestTornHeaderYieldsNothing: a segment whose header never finished
// writing contributes no records but does not fail recovery, and later
// segments still replay.
func TestTornHeaderYieldsNothing(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segmentPath(dir, 1), []byte("STWAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	full := appendSegmentHeader(nil)
	full = AppendRecord(full, 1, []byte("later"))
	if err := os.WriteFile(segmentPath(dir, 2), full, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayPayloads(t, dir)
	if len(got) != 1 || string(got[0]) != "later" {
		t.Fatalf("recovered %v, want just %q from the intact segment", got, "later")
	}
}

// TestForeignFilesIgnored: recovery skips non-segment files in the data
// directory rather than tripping over them.
func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	buildSegment(t, dir, [][]byte{[]byte("only")})
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayPayloads(t, dir)
	if len(got) != 1 || string(got[0]) != "only" {
		t.Fatalf("recovered %v, want just %q", got, "only")
	}
}
