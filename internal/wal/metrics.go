package wal

import "seamlesstune/internal/obs"

// WAL metrics. Appends and fsyncs are the amortization story — their
// ratio is the achieved group-commit batch size; the fsync latency
// sketch feeds the p50/p99 quantiles tunectl storage reports; the
// segment and disk gauges are the compactor's effect made visible.
var (
	mAppends = obs.Default().Counter("wal_appends_total",
		"Records appended to the write-ahead log.")
	mAppendErrors = obs.Default().Counter("wal_append_errors_total",
		"Records that reached the WAL writer but failed to persist.")
	mAsyncDropped = obs.Default().Counter("wal_async_dropped_total",
		"Asynchronous appends rejected at the queue bound.")
	mFsyncs = obs.Default().Counter("wal_fsyncs_total",
		"Group-commit fsync batches flushed to disk.")
	mFsyncSeconds = obs.Default().HistogramSketched("wal_fsync_seconds",
		"Latency of each group-commit fsync.", obs.ExpBuckets(1e-5, 4, 10))
	mBatchRecords = obs.Default().HistogramSketched("wal_batch_records",
		"Records coalesced into each group commit.", obs.ExpBuckets(1, 2, 10))
	mQueueDepth = obs.Default().Gauge("wal_queue_depth",
		"Appends waiting for the WAL writer.")
	mSegments = obs.Default().Gauge("wal_segments",
		"On-disk WAL segments, including the active one.")
	mDiskBytes = obs.Default().Gauge("wal_disk_bytes",
		"Total bytes across all WAL segments.")
)
