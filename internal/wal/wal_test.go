package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectAll replays dir into a slice of (typ, payload) pairs.
func collectAll(t *testing.T, dir string) (recs []struct {
	typ     byte
	payload []byte
}, st ReplayStats) {
	t.Helper()
	st, err := Replay(dir, func(_ uint64, typ byte, payload []byte) error {
		recs = append(recs, struct {
			typ     byte
			payload []byte
		}{typ, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 0, 100)
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%17)))
		if err := l.Append(byte(1+i%3), p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, p)
	}
	if err := l.Sync(); err != nil { // noop record; Replay must drop it
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, st := collectAll(t, dir)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if !bytes.Equal(r.payload, want[i]) {
			t.Fatalf("record %d payload = %q, want %q", i, r.payload, want[i])
		}
		if wantTyp := byte(1 + i%3); r.typ != wantTyp {
			t.Fatalf("record %d type = %d, want %d", i, r.typ, wantTyp)
		}
	}
	if st.Truncated != 0 {
		t.Errorf("clean log replayed with %d truncated segments", st.Truncated)
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Segments; got < 3 {
		t.Errorf("Segments = %d after %d oversized appends, want rolling", got, n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != n {
		t.Fatalf("replayed %d records across rolled segments, want %d", len(recs), n)
	}
}

func TestRotateAndRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	sealedThrough, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append(1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveThrough(sealedThrough); err != nil {
		t.Fatalf("RemoveThrough: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != 1 || string(recs[0].payload) != "new" {
		t.Fatalf("after fold, replay = %+v, want just %q", recs, "new")
	}
}

func TestRestartNeverAppendsToOldSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("gen1")); err != nil {
		t.Fatal(err)
	}
	gen1 := l.Stats().ActiveIndex
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().ActiveIndex; got <= gen1 {
		t.Errorf("second generation active index = %d, want > %d", got, gen1)
	}
	if err := l2.Append(1, []byte("gen2")); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records across generations, want 2", len(recs))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(1, []byte("late")); err != ErrClosed {
		t.Errorf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.AppendAsync(1, []byte("late")); err != ErrClosed {
		t.Errorf("AppendAsync after Close = %v, want ErrClosed", err)
	}
}

func TestCloseFlushesQueuedAsyncAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.AppendAsync(1, []byte{byte(i)}); err != nil {
			t.Fatalf("AppendAsync %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != n {
		t.Fatalf("replayed %d async records after Close, want %d", len(recs), n)
	}
}

// TestQueueBoundAndSaturation stalls the writer's fsync via the SyncFunc
// seam, fills the bounded queue, and verifies AppendAsync fails fast
// while Saturated trips — the admission-control contract.
func TestQueueBoundAndSaturation(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	var stall atomic.Bool // Open fsyncs the segment header; only stall appends
	var once sync.Once
	blocked := make(chan struct{})
	l, err := Open(dir, Options{
		QueueDepth: 8,
		SyncFunc: func(f *os.File) error {
			if stall.Load() {
				once.Do(func() { close(blocked) })
				<-release
			}
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stall.Store(true)
	// First append occupies the writer inside the stalled fsync.
	go l.Append(1, []byte("stall"))
	<-blocked
	// Fill the queue; the writer cannot drain it.
	sawFull := false
	for i := 0; i < 64 && !sawFull; i++ {
		if err := l.AppendAsync(1, []byte("fill")); err == ErrQueueFull {
			sawFull = true
		}
	}
	if !sawFull {
		t.Error("AppendAsync never returned ErrQueueFull at the bound")
	}
	if !l.Saturated() {
		t.Error("Saturated() = false with a full queue")
	}
	if l.Stats().AsyncDropped == 0 {
		t.Error("Stats().AsyncDropped = 0 after shedding")
	}
	close(release)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAmortization drives concurrent sync appends through a
// slow fsync and verifies batches formed: fewer fsyncs than appends, and
// every record durable.
func TestGroupCommitAmortization(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{
		FsyncInterval: time.Millisecond,
		SyncFunc: func(f *os.File) error {
			time.Sleep(200 * time.Microsecond) // make fsync the bottleneck
			return f.Sync()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(1, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != workers*per {
		t.Errorf("Appends = %d, want %d", st.Appends, workers*per)
	}
	if st.Fsyncs >= st.Appends {
		t.Errorf("no group commit: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(recs), workers*per)
	}
}

func TestReplayMissingDir(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "nope"), func(uint64, byte, []byte) error {
		t.Fatal("callback on missing dir")
		return nil
	})
	if err != nil {
		t.Fatalf("Replay on missing dir: %v", err)
	}
	if st.Segments != 0 || st.Records != 0 {
		t.Errorf("missing dir stats = %+v, want zeros", st)
	}
}

// TestAppendRejectsOversizedPayload holds the write side to the replay
// side's record bound: a payload beyond MaxRecordBytes must fail the
// append — never be written "successfully" only to be treated as
// corruption (and silently truncate the log) at the next recovery.
func TestAppendRejectsOversizedPayload(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxRecordBytes+1)
	if err := l.Append(1, big); err != ErrTooLarge {
		t.Fatalf("Append(oversized) = %v, want ErrTooLarge", err)
	}
	if err := l.AppendAsync(1, big); err != ErrTooLarge {
		t.Fatalf("AppendAsync(oversized) = %v, want ErrTooLarge", err)
	}
	// The rejection is not sticky: the log stays usable.
	if err := l.Append(1, []byte("still fine")); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := collectAll(t, dir)
	if len(recs) != 1 || string(recs[0].payload) != "still fine" {
		t.Fatalf("replayed %d records, want only the in-bounds one", len(recs))
	}
}

func TestRecordFraming(t *testing.T) {
	frame := AppendRecord(nil, 7, []byte("hello"))
	typ, payload, n, err := DecodeRecord(frame)
	if err != nil || typ != 7 || string(payload) != "hello" || n != len(frame) {
		t.Fatalf("round trip = (%d, %q, %d, %v)", typ, payload, n, err)
	}
	// Truncations of a valid frame are short, not corrupt.
	for i := 0; i < len(frame); i++ {
		if _, _, _, err := DecodeRecord(frame[:i]); err == nil {
			t.Fatalf("DecodeRecord accepted %d/%d bytes", i, len(frame))
		}
	}
	// A flipped payload byte fails the checksum.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, _, _, err := DecodeRecord(bad); err == nil {
		t.Fatal("DecodeRecord accepted corrupt payload")
	}
}
