package wal

import (
	"errors"
	"os"
)

// ReplayStats summarizes one recovery scan.
type ReplayStats struct {
	// Segments is how many segment files were scanned; Records how many
	// committed records were delivered to the callback.
	Segments int
	Records  int
	// Truncated counts segments whose scan ended at a torn or corrupt
	// record instead of a clean end-of-file — expected for at most the
	// final segment of a crashed generation.
	Truncated int
	// Bytes is the total number of bytes scanned.
	Bytes int64
}

// errStopReplay lets a callback end a replay early without error.
var errStopReplay = errors.New("wal: stop replay")

// Replay scans every segment in dir oldest-first and calls fn for each
// committed record, in write order. A record that fails checksum
// verification — or a segment whose header is torn — ends that segment's
// scan: the bytes past it were never acknowledged as durable, so they
// are dropped rather than guessed at. Replay never invents a record and
// never fails on torn tails; it returns an error only for I/O problems
// or a non-nil callback error.
//
// Replay is a read-only scan: it is safe on a directory the log has
// crashed in, and safe before Open (the usual recovery order).
func Replay(dir string, fn func(seg uint64, typ byte, payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := scanSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil // nothing persisted yet
		}
		return st, err
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			return st, err
		}
		st.Segments++
		st.Bytes += int64(len(data))
		if !checkSegmentHeader(data) {
			// A torn header means the crash happened during segment
			// creation; the segment holds nothing durable.
			st.Truncated++
			continue
		}
		rest := data[segHeaderSize:]
		for len(rest) > 0 {
			typ, payload, n, err := DecodeRecord(rest)
			if err != nil {
				// Torn or corrupt tail: everything before it is the
				// durable prefix; everything after was never acked.
				st.Truncated++
				break
			}
			rest = rest[n:]
			if typ == typeNoop {
				continue
			}
			st.Records++
			if err := fn(seg.Index, typ, payload); err != nil {
				if errors.Is(err, errStopReplay) {
					return st, nil
				}
				return st, err
			}
		}
	}
	return st, nil
}
