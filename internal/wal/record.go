package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// On-disk framing. Every segment starts with a fixed header; records
// follow back to back:
//
//	segment header (16 bytes): "STWALSEG" | version uint32 LE | reserved uint32
//	record:  crc uint32 LE | length uint32 LE | type byte | payload[length]
//
// The CRC (Castagnoli) covers the type byte and the payload, so any
// single corrupted byte in a record — including in its own length field,
// which shifts the window the checksum is computed over — fails
// verification. Readers stop at the first record that does not verify:
// a torn tail (the crash window of an in-flight group commit) silently
// truncates the log to its last durable prefix instead of poisoning it.
const (
	segMagic   = "STWALSEG"
	segVersion = 1

	// segHeaderSize is the byte length of the segment header.
	segHeaderSize = 16
	// recordOverhead is the framing cost per record (crc + length + type).
	recordOverhead = 9
	// MaxRecordBytes bounds a single record's payload. Lengths beyond it
	// are treated as corruption — the cap keeps a flipped length byte from
	// turning into a multi-gigabyte allocation during replay.
	MaxRecordBytes = 64 << 20
)

// Record types are opaque to the log itself; the storage layer assigns
// meaning. They are part of the framing so replay can dispatch without
// decoding payloads.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing errors. ErrShortRecord means the buffer ends inside a record
// (a torn tail); ErrCorrupt means the bytes are inconsistent (bad CRC or
// an impossible length). Replay treats both as end-of-log.
var (
	ErrShortRecord = errors.New("wal: truncated record")
	ErrCorrupt     = errors.New("wal: corrupt record")
)

// AppendRecord appends the framed encoding of (typ, payload) to dst and
// returns the extended slice.
func AppendRecord(dst []byte, typ byte, payload []byte) []byte {
	var hdr [recordOverhead]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	hdr[8] = typ
	crc := crc32.Update(0, castagnoli, hdr[8:9])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord decodes the first record in b. It returns the record type,
// the payload (aliasing b — callers that retain it must copy), and the
// total encoded length consumed. ErrShortRecord reports a record cut off
// by the end of b; ErrCorrupt a failed checksum or an impossible length.
func DecodeRecord(b []byte) (typ byte, payload []byte, n int, err error) {
	if len(b) < recordOverhead {
		return 0, nil, 0, ErrShortRecord
	}
	length := binary.LittleEndian.Uint32(b[4:8])
	if length > MaxRecordBytes {
		return 0, nil, 0, ErrCorrupt
	}
	total := recordOverhead + int(length)
	if len(b) < total {
		return 0, nil, 0, ErrShortRecord
	}
	want := binary.LittleEndian.Uint32(b[0:4])
	if crc32.Checksum(b[8:total], castagnoli) != want {
		return 0, nil, 0, ErrCorrupt
	}
	return b[8], b[recordOverhead:total], total, nil
}

// appendSegmentHeader appends a fresh segment header to dst.
func appendSegmentHeader(dst []byte) []byte {
	dst = append(dst, segMagic...)
	var v [8]byte
	binary.LittleEndian.PutUint32(v[0:4], segVersion)
	return append(dst, v[:]...)
}

// checkSegmentHeader verifies b starts with a valid segment header.
func checkSegmentHeader(b []byte) bool {
	if len(b) < segHeaderSize || string(b[:len(segMagic)]) != segMagic {
		return false
	}
	return binary.LittleEndian.Uint32(b[8:12]) == segVersion
}
