// Package wal implements a segmented, checksummed write-ahead log with
// group commit — the durable append substrate behind the tuning
// service's storage tier. Appends from concurrent callers coalesce into
// batched fsyncs on a single writer goroutine: each caller pays one
// buffered encode plus an amortized fsync, instead of the O(history)
// snapshot rewrite the service previously performed per completed job.
//
// The log is a directory of fixed-header segment files named
// "<index>.wal" in ascending hexadecimal order. A segment rolls once it
// exceeds a size threshold; every process start seals the previous
// generation by opening a fresh segment, so recovery never has to repair
// a tail in place. Records carry a CRC over their type and payload;
// replay stops at the first record that fails verification, which
// truncates a torn tail (the crash window of an in-flight group commit)
// to the last durable prefix. Compaction is the storage layer's job: the
// log only provides Rotate (seal the active segment) and RemoveThrough
// (delete folded segments).
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures Open.
type Options struct {
	// SegmentBytes is the roll threshold: a segment whose size would
	// exceed it is sealed and a new one started (0 = 8 MiB). A single
	// record larger than the threshold still fits — it gets a segment of
	// its own.
	SegmentBytes int64
	// FsyncInterval bounds the group-commit window: once a batch has
	// begun, the writer waits at most this long for more appends to share
	// the fsync (0 = 2ms). The wait is adaptive — a lone appender is
	// flushed immediately; the window only opens when the previous batch
	// proved there is concurrency to harvest.
	FsyncInterval time.Duration
	// MaxBatch caps records per fsync (0 = 256).
	MaxBatch int
	// QueueDepth bounds pending appends (0 = 1024). AppendAsync fails
	// fast with ErrQueueFull at the bound; Append blocks until space or
	// close. Saturated reports when the queue is near the bound, the
	// admission-control signal the job engine sheds load on.
	QueueDepth int
	// NoSync skips the fsync after each batch — the log is then crash-
	// durable only to the extent the OS flushes dirty pages. For tests
	// and benchmarks that measure everything but the disk.
	NoSync bool
	// SyncFunc overrides the per-batch fsync syscall (nil = File.Sync) —
	// a fault-injection and latency-simulation seam for tests.
	SyncFunc func(*os.File) error
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
}

// ErrClosed reports an append against a closed log; ErrQueueFull an
// AppendAsync rejected at the queue bound (the caller's record is NOT
// durable — shed or retry); ErrTooLarge a payload beyond MaxRecordBytes.
// The size bound is enforced here, on the write side, because replay
// treats oversized lengths as corruption: a record that slipped past it
// would be written "successfully" and then silently truncate recovery
// at its offset — the worst possible failure mode for a durability
// layer. (It would also overflow the uint32 length field past 4 GiB.)
var (
	ErrClosed    = fmt.Errorf("wal: log closed")
	ErrQueueFull = fmt.Errorf("wal: append queue full")
	ErrTooLarge  = fmt.Errorf("wal: record payload exceeds %d bytes", MaxRecordBytes)
)

// SegmentInfo describes one on-disk segment.
type SegmentInfo struct {
	Index uint64 `json:"index"`
	Bytes int64  `json:"bytes"`
	Path  string `json:"-"`
}

// Stats is a point-in-time summary of the log.
type Stats struct {
	// Segments counts every on-disk segment including the active one;
	// SealedSegments those no longer written to (compaction candidates).
	Segments       int    `json:"segments"`
	SealedSegments int    `json:"sealedSegments"`
	ActiveIndex    uint64 `json:"activeIndex"`
	// DiskBytes is the total size of all segments.
	DiskBytes int64 `json:"diskBytes"`
	// Appends counts records accepted (sync and async); AsyncDropped
	// async appends rejected at the queue bound; AppendErrors records
	// that reached the writer but failed to persist.
	Appends      uint64 `json:"appends"`
	AsyncDropped uint64 `json:"asyncDropped"`
	AppendErrors uint64 `json:"appendErrors"`
	// Fsyncs counts batch commits; Batches==Fsyncs, so Appends/Fsyncs is
	// the achieved group-commit amortization.
	Fsyncs uint64 `json:"fsyncs"`
	// QueueDepth/QueueCap describe the pending-append queue; Saturated
	// mirrors the admission-control probe.
	QueueDepth int  `json:"queueDepth"`
	QueueCap   int  `json:"queueCap"`
	Saturated  bool `json:"saturated"`
}

// request is one unit of writer work: either a framed record to append,
// or a control action (rotate, stop).
type request struct {
	frame  *[]byte // framed record bytes (pooled; writer releases)
	done   chan error
	rotate chan rotateReply
	stop   bool
}

type rotateReply struct {
	sealedThrough uint64
	err           error
}

// Log is a segmented write-ahead log. Open constructs one; Close releases
// it. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	reqs    chan request
	closing chan struct{} // closed by Close: unblocks senders
	done    chan struct{} // closed when the writer exits
	closed  atomic.Bool

	appends      atomic.Uint64
	asyncDropped atomic.Uint64
	appendErrors atomic.Uint64
	fsyncs       atomic.Uint64

	// mu guards the segment bookkeeping shared between the writer and
	// Stats/Segments/RemoveThrough.
	mu          sync.Mutex
	sealed      []SegmentInfo
	activeIndex uint64
	activeSize  int64
	writeErr    error // sticky writer failure

	// writer-goroutine state (no locking needed).
	active        *os.File
	buf           []byte
	lastBatchSize int

	framePool sync.Pool
}

// Open scans dir (creating it if needed), indexes the existing segments,
// and starts a fresh active segment — the previous generation is never
// appended to again, so a torn tail from a crash stays frozen where
// replay can skip it. Call Replay before Open to recover state.
func Open(dir string, opts Options) (*Log, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].Index + 1
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		reqs:    make(chan request, opts.QueueDepth),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		sealed:  segs,
	}
	l.framePool.New = func() any { b := make([]byte, 0, 512); return &b }
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	go l.run()
	return l, nil
}

// segmentPath renders a segment file name; indexes sort lexically.
func segmentPath(dir string, index uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.wal", index))
}

// scanSegments lists dir's segments in ascending index order.
func scanSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".wal" {
			continue
		}
		idx, err := strconv.ParseUint(name[:len(name)-len(".wal")], 16, 64)
		if err != nil {
			continue // foreign file; not ours to touch
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{Index: idx, Bytes: info.Size(), Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	return segs, nil
}

// openSegment creates the segment file with its header and makes it the
// active one. The directory entry is fsynced so the new segment survives
// a crash that follows immediately.
func (l *Log) openSegment(index uint64) error {
	path := segmentPath(l.dir, index)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := appendSegmentHeader(nil)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := l.sync(f); err != nil {
			f.Close()
			return err
		}
		if err := SyncDir(l.dir); err != nil {
			f.Close()
			return err
		}
	}
	l.active = f
	l.mu.Lock()
	l.activeIndex = index
	l.activeSize = int64(len(hdr))
	l.mu.Unlock()
	mSegments.Set(float64(l.segmentCount()))
	return nil
}

func (l *Log) sync(f *os.File) error {
	if l.opts.SyncFunc != nil {
		return l.opts.SyncFunc(f)
	}
	return f.Sync()
}

// Append durably appends one record: it returns once the record's batch
// has been written and fsynced. Concurrent callers share fsyncs via
// group commit, so the amortized cost under load is one buffered encode
// plus 1/batch of an fsync.
func (l *Log) Append(typ byte, payload []byte) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	frame := l.encode(typ, payload)
	req := request{frame: frame, done: make(chan error, 1)}
	select {
	case l.reqs <- req:
	case <-l.closing:
		l.release(frame)
		return ErrClosed
	}
	select {
	case err := <-req.done:
		return err
	case <-l.done:
		// The writer exited; it may or may not have handled the request.
		select {
		case err := <-req.done:
			return err
		default:
			return ErrClosed
		}
	}
}

// AppendAsync appends one record without waiting for durability: the
// record rides the next group commit. At the queue bound it fails fast
// with ErrQueueFull instead of blocking — the telemetry contract (drop,
// don't stall the hot path).
func (l *Log) AppendAsync(typ byte, payload []byte) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	frame := l.encode(typ, payload)
	select {
	case l.reqs <- frameOnly(frame):
		return nil
	default:
		l.release(frame)
		l.asyncDropped.Add(1)
		mAsyncDropped.Inc()
		return ErrQueueFull
	}
}

func frameOnly(frame *[]byte) request { return request{frame: frame} }

func (l *Log) encode(typ byte, payload []byte) *[]byte {
	bp := l.framePool.Get().(*[]byte)
	*bp = AppendRecord((*bp)[:0], typ, payload)
	return bp
}

func (l *Log) release(frame *[]byte) {
	if frame != nil {
		l.framePool.Put(frame)
	}
}

// Sync forces any queued appends to disk before returning.
func (l *Log) Sync() error { return l.Append(typeNoop, nil) }

// typeNoop is the reserved record type Sync appends; Replay drops it.
const typeNoop = 0

// Rotate seals the active segment and opens the next one, returning the
// highest sealed index — the compactor's fold boundary: every record in
// segments <= sealedThrough is on disk before Rotate returns.
func (l *Log) Rotate() (sealedThrough uint64, err error) {
	if l.closed.Load() {
		return 0, ErrClosed
	}
	req := request{rotate: make(chan rotateReply, 1)}
	select {
	case l.reqs <- req:
	case <-l.closing:
		return 0, ErrClosed
	}
	select {
	case rep := <-req.rotate:
		return rep.sealedThrough, rep.err
	case <-l.done:
		select {
		case rep := <-req.rotate:
			return rep.sealedThrough, rep.err
		default:
			return 0, ErrClosed
		}
	}
}

// RemoveThrough deletes sealed segments with index <= through (the
// compactor's tail drop). The active segment is never removed.
func (l *Log) RemoveThrough(through uint64) error {
	l.mu.Lock()
	var keep, drop []SegmentInfo
	for _, s := range l.sealed {
		if s.Index <= through {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	var firstErr error
	for _, s := range drop {
		if err := os.Remove(s.Path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(drop) > 0 && !l.opts.NoSync {
		if err := SyncDir(l.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	mSegments.Set(float64(l.segmentCount()))
	return firstErr
}

// Segments returns the on-disk segments, oldest first, active last.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, 0, len(l.sealed)+1)
	out = append(out, l.sealed...)
	out = append(out, SegmentInfo{Index: l.activeIndex, Bytes: l.activeSize, Path: segmentPath(l.dir, l.activeIndex)})
	return out
}

func (l *Log) segmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// Saturated reports whether the append queue is at or beyond 90% of its
// bound — the backpressure signal admission control sheds load on.
func (l *Log) Saturated() bool {
	return len(l.reqs)*10 >= cap(l.reqs)*9
}

// Stats summarizes the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Segments:       len(l.sealed) + 1,
		SealedSegments: len(l.sealed),
		ActiveIndex:    l.activeIndex,
		DiskBytes:      l.activeSize,
	}
	for _, s := range l.sealed {
		st.DiskBytes += s.Bytes
	}
	l.mu.Unlock()
	st.Appends = l.appends.Load()
	st.AsyncDropped = l.asyncDropped.Load()
	st.AppendErrors = l.appendErrors.Load()
	st.Fsyncs = l.fsyncs.Load()
	st.QueueDepth = len(l.reqs)
	st.QueueCap = cap(l.reqs)
	st.Saturated = l.Saturated()
	return st
}

// Close flushes pending appends, fsyncs, and releases the writer.
// Appends after Close fail with ErrClosed. Idempotent.
func (l *Log) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		<-l.done
		return nil
	}
	close(l.closing)
	// The stop request queues behind pending appends; the writer drains
	// everything buffered before exiting.
	l.reqs <- request{stop: true}
	<-l.done
	l.mu.Lock()
	err := l.writeErr
	l.mu.Unlock()
	return err
}

// run is the writer goroutine: it collects batches of appends, writes
// them to the active segment, fsyncs once per batch, and acknowledges
// every sync waiter — classic group commit.
func (l *Log) run() {
	defer close(l.done)
	defer func() {
		if l.active != nil {
			l.active.Close()
		}
	}()
	var batch []request
	var timer *time.Timer
	for {
		req, ok := <-l.reqs
		if !ok {
			return
		}
		if req.stop {
			l.drainAndExit()
			return
		}
		if req.rotate != nil {
			l.handleRotate(req)
			continue
		}
		batch = append(batch[:0], req)
		// Adaptive window: harvest whatever is already queued; only hold
		// the batch open for the fsync window when the previous batch
		// proved there is concurrency worth waiting for.
		stop := l.collect(&batch, &timer)
		l.flush(batch)
		if stop != nil {
			if stop.stop {
				l.drainAndExit()
				return
			}
			l.handleRotate(*stop)
		}
	}
}

// collect fills *batch from the queue up to MaxBatch, holding the batch
// open for at most FsyncInterval when recent traffic suggests more
// appends are coming. It returns a pending control request, if one was
// encountered (the batch is flushed before the control acts).
func (l *Log) collect(batch *[]request, timer **time.Timer) *request {
	// First: non-blocking drain of whatever queued while the last batch
	// was being written — natural group commit.
	for len(*batch) < l.opts.MaxBatch {
		select {
		case r := <-l.reqs:
			if r.stop || r.rotate != nil {
				return &r
			}
			*batch = append(*batch, r)
		default:
			goto window
		}
	}
	return nil
window:
	if l.lastBatchSize <= 1 {
		return nil // lone appender: flush immediately, don't tax latency
	}
	if *timer == nil {
		*timer = time.NewTimer(l.opts.FsyncInterval)
	} else {
		(*timer).Reset(l.opts.FsyncInterval)
	}
	for len(*batch) < l.opts.MaxBatch {
		select {
		case r := <-l.reqs:
			if r.stop || r.rotate != nil {
				stopTimer(*timer)
				return &r
			}
			*batch = append(*batch, r)
		case <-(*timer).C:
			return nil
		}
	}
	stopTimer(*timer)
	return nil
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drainAndExit flushes everything still buffered in the queue, then
// returns; the deferred close(l.done) releases Close.
func (l *Log) drainAndExit() {
	var batch []request
	for {
		select {
		case r := <-l.reqs:
			if r.stop {
				continue
			}
			if r.rotate != nil {
				l.flush(batch)
				batch = batch[:0]
				l.handleRotate(r)
				continue
			}
			batch = append(batch, r)
			if len(batch) >= l.opts.MaxBatch {
				l.flush(batch)
				batch = batch[:0]
			}
		default:
			l.flush(batch)
			return
		}
	}
}

func (l *Log) handleRotate(req request) {
	sealedThrough := l.sealActive()
	err := l.takeWriteErr()
	if err == nil {
		err = l.openSegment(sealedThrough + 1)
		if err != nil {
			l.setWriteErr(err)
		}
	}
	req.rotate <- rotateReply{sealedThrough: sealedThrough, err: err}
}

// sealActive flushes and closes the active segment, recording it as
// sealed, and returns its index.
func (l *Log) sealActive() uint64 {
	if !l.opts.NoSync && l.active != nil {
		if err := l.sync(l.active); err != nil {
			l.setWriteErr(err)
		}
	}
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.mu.Lock()
	idx := l.activeIndex
	l.sealed = append(l.sealed, SegmentInfo{Index: idx, Bytes: l.activeSize, Path: segmentPath(l.dir, idx)})
	l.mu.Unlock()
	return idx
}

// flush writes the batch to the active segment, rolling it at the size
// threshold, fsyncs once, and acknowledges every waiter.
func (l *Log) flush(batch []request) {
	if len(batch) == 0 {
		return
	}
	l.lastBatchSize = len(batch)
	var err error
	if e := l.takeWriteErr(); e != nil {
		err = e // sticky: a failed segment stays failed
	} else {
		err = l.writeBatch(batch)
	}
	if err != nil {
		l.setWriteErr(err)
		l.appendErrors.Add(uint64(len(batch)))
		mAppendErrors.Add(float64(len(batch)))
	} else {
		l.appends.Add(uint64(len(batch)))
		l.fsyncs.Add(1)
		mAppends.Add(float64(len(batch)))
		mBatchRecords.Observe(float64(len(batch)))
	}
	for _, r := range batch {
		l.release(r.frame)
		if r.done != nil {
			r.done <- err
		}
	}
	mQueueDepth.Set(float64(len(l.reqs)))
}

func (l *Log) writeBatch(batch []request) error {
	size := int64(0)
	for _, r := range batch {
		size += int64(len(*r.frame))
	}
	l.mu.Lock()
	roll := l.activeSize > segHeaderSize && l.activeSize+size > l.opts.SegmentBytes
	l.mu.Unlock()
	if roll {
		idx := l.sealActive()
		if err := l.takeWriteErr(); err != nil {
			return err
		}
		if err := l.openSegment(idx + 1); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	for _, r := range batch {
		l.buf = append(l.buf, *r.frame...)
	}
	if _, err := l.active.Write(l.buf); err != nil {
		return err
	}
	if !l.opts.NoSync {
		start := time.Now()
		if err := l.sync(l.active); err != nil {
			return err
		}
		el := time.Since(start).Seconds()
		mFsyncs.Inc()
		mFsyncSeconds.Observe(el)
	}
	l.mu.Lock()
	l.activeSize += size
	mDiskAdd := l.activeSize
	for _, s := range l.sealed {
		mDiskAdd += s.Bytes
	}
	l.mu.Unlock()
	mDiskBytes.Set(float64(mDiskAdd))
	return nil
}

func (l *Log) setWriteErr(err error) {
	l.mu.Lock()
	if l.writeErr == nil {
		l.writeErr = err
	}
	l.mu.Unlock()
}

func (l *Log) takeWriteErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErr
}

// SyncDir fsyncs a directory, making renames and file creations beneath
// it durable — the missing half of the temp-and-rename idiom.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
