package wal

import (
	"encoding/json"
	"os"
	"testing"
)

// benchPayload approximates one history record's JSON (~200 bytes).
var benchPayload = func() []byte {
	b, _ := json.Marshal(map[string]any{
		"seq": 12345, "tenant": "acme", "workload": "wordcount",
		"inputBytes": int64(2 << 30), "cluster": "8x nimbus/h1.4xlarge",
		"config":   map[string]float64{"spark.executor.memory": 8192, "spark.sql.shuffle.partitions": 200},
		"runtimeS": 123.4, "costUSD": 0.82,
	})
	return b
}()

// BenchmarkWALAppend measures the append hot path. The async and grouped
// variants run NoSync — they measure the log's own cost (encode, frame,
// queue, batch, write), which is what regresses from code changes; the
// fsync variant includes the real disk and is recorded, not gated.
func BenchmarkWALAppend(b *testing.B) {
	b.Run("async", func(b *testing.B) {
		l, err := Open(b.TempDir(), Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.SetBytes(int64(len(benchPayload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l.AppendAsync(1, benchPayload) == ErrQueueFull {
				l.Sync() // drain, then retry; keeps every iteration an append
			}
		}
	})
	b.Run("sync", func(b *testing.B) {
		l, err := Open(b.TempDir(), Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.SetBytes(int64(len(benchPayload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := l.Append(1, benchPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grouped-fsync", func(b *testing.B) {
		l, err := Open(b.TempDir(), Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.SetBytes(int64(len(benchPayload)))
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := l.Append(1, benchPayload); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkWALReplay measures crash recovery over a 100k-record log —
// the startup cost the acceptance bar holds under a second.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	const n = 100_000
	for i := 0; i < n; i++ {
		if err := l.AppendAsync(1, benchPayload); err == ErrQueueFull {
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
			i--
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		st, err := Replay(dir, func(uint64, byte, []byte) error {
			count++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("replayed %d records, want %d (stats %+v)", count, n, st)
		}
	}
	b.ReportMetric(float64(n), "records/recovery")
}

// BenchmarkSnapshotPerWrite is the baseline the WAL replaces: persisting
// one new trial by rewriting the whole history snapshot, at a 10k-trial
// history. Compare with BenchmarkWALAppend/async — the per-append cost
// of the tier this PR adds.
func BenchmarkSnapshotPerWrite(b *testing.B) {
	recs := make([]json.RawMessage, 10_000)
	for i := range recs {
		recs[i] = benchPayload
	}
	path := b.TempDir() + "/state.json"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(recs); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if fi, err := os.Stat(path); err == nil {
		b.SetBytes(fi.Size())
	}
}
