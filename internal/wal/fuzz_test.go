package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord holds the decoder to its contract on arbitrary bytes:
// it never panics, never reads past the buffer, never accepts a frame
// whose re-encoding differs (the checksum covers type and payload), and
// classifies every failure as short or corrupt.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, 1, []byte("seed")))
	f.Add(AppendRecord(nil, 3, nil))
	f.Add(AppendRecord(AppendRecord(nil, 1, []byte("two")), 2, []byte("records")))
	truncated := AppendRecord(nil, 1, []byte("torn-tail"))
	f.Add(truncated[:len(truncated)-3])
	corrupt := AppendRecord(nil, 2, []byte("bitrot"))
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)
	huge := AppendRecord(nil, 1, nil)
	huge[4] = 0xff
	huge[5] = 0xff
	huge[6] = 0xff
	huge[7] = 0xff // length far beyond MaxRecordBytes
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, n, err := DecodeRecord(b)
		if err != nil {
			if err != ErrShortRecord && err != ErrCorrupt {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if n < recordOverhead || n > len(b) {
			t.Fatalf("accepted frame length %d out of range [%d, %d]", n, recordOverhead, len(b))
		}
		if len(payload) > MaxRecordBytes {
			t.Fatalf("accepted payload of %d bytes beyond MaxRecordBytes", len(payload))
		}
		// A frame the decoder accepts must be exactly what the encoder
		// produces for (typ, payload) — no malleability.
		if re := AppendRecord(nil, typ, payload); !bytes.Equal(re, b[:n]) {
			t.Fatalf("decode/encode mismatch:\n got %x\nwant %x", b[:n], re)
		}
	})
}
