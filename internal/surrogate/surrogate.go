// Package surrogate defines the pluggable posterior-model tier behind
// the service's Bayesian-optimization tuners. BayesOpt historically hard-
// depended on the exact Gaussian process, whose O(n³) refits cap how much
// execution history a session can warm-start from; this package carves
// that dependency into a small Model interface with three backends:
//
//   - "gp"     — the exact Matérn-5/2 GP with grid hyper-search, the
//     reference implementation (bit-identical to the pre-interface tuner);
//   - "rffgp"  — a random-Fourier-feature GP approximation with O(n·D²)
//     fits and history-size-independent predictions;
//   - "forest" — a random forest whose across-tree spread supplies the
//     EI uncertainty (Tuneful-style), with capped per-tree bootstraps.
//
// Stochastic backends take an explicit seed, so a surrogate is a pure
// function of (seed, training data): trajectories replay bit-for-bit
// regardless of scheduling or worker counts.
package surrogate

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"seamlesstune/internal/gp"
	"seamlesstune/internal/learn"
	"seamlesstune/internal/stat"
)

// Model is a posterior regressor over unit-encoded configurations. A
// tuner fits it on the observations so far and queries mean/std to score
// acquisition candidates. Implementations are stateful and single-
// session; they keep their last good posterior when a Fit fails, so a
// transient numerical failure degrades to stale predictions rather than
// no predictions.
type Model interface {
	// Name returns the backend's registry name (one of Names()).
	Name() string
	// Fit trains on the full sample. Implementations may recognize that
	// xs/ys extend the previously fitted sample and update incrementally.
	Fit(xs [][]float64, ys []float64) error
	// Predict returns the posterior mean and standard deviation at x (in
	// target units). An unfitted model predicts (0, +Inf).
	Predict(x []float64) (mean, std float64)
	// PredictBatch returns the posterior at every query point, bit-
	// identical to per-point Predict calls but batched for the
	// acquisition hot path.
	PredictBatch(xs [][]float64) (means, stds []float64)
	// Fitted reports whether the model holds a usable posterior.
	Fitted() bool
}

// Extender is an optional Model capability: absorbing appended
// observations incrementally, cheaper than a from-scratch Fit. Extend
// reports false when (xs, ys) does not extend the fitted sample or the
// backend cannot extend — the caller should fall back to Fit.
type Extender interface {
	Extend(xs [][]float64, ys []float64) bool
}

// HyperRefitter is an optional Model capability: discarding all cached
// factorizations and hyperparameter state and refitting from scratch.
// Periodic refreshers use it to bound numerical drift in long sessions.
type HyperRefitter interface {
	RefitHypers(xs [][]float64, ys []float64) error
}

// Registry names of the built-in backends.
const (
	KindGP     = "gp"
	KindRFFGP  = "rffgp"
	KindForest = "forest"
)

// Names returns the accepted backend names, in documentation order.
func Names() []string { return []string{KindGP, KindRFFGP, KindForest} }

// Valid reports whether name is a known backend name. The empty string
// is not valid here — callers resolve "" to their default before
// validating.
func Valid(name string) bool {
	switch name {
	case KindGP, KindRFFGP, KindForest:
		return true
	}
	return false
}

// Config selects and seeds a surrogate backend.
type Config struct {
	// Kind is a Names() entry; empty selects KindGP.
	Kind string
	// Seed drives the stochastic backends (random-feature draws, forest
	// resampling). Derive it from the session seed (e.g.
	// stat.DeriveSeed(seed, "surrogate")) for replayable sessions. The
	// exact GP ignores it.
	Seed int64
}

// New constructs the configured backend. Unknown kinds return an error
// naming the accepted list (the same list layered validation surfaces to
// API clients).
func New(cfg Config) (Model, error) {
	switch cfg.Kind {
	case "", KindGP:
		return &exactGP{fitter: gp.NewHyperFitter(gp.KindMatern52)}, nil
	case KindRFFGP:
		return &rffGP{rff: gp.NewRFF(gp.KindMatern52, cfg.Seed)}, nil
	case KindForest:
		return newForest(cfg.Seed), nil
	default:
		return nil, fmt.Errorf("surrogate: unknown kind %q (accepted: %s)",
			cfg.Kind, strings.Join(Names(), ", "))
	}
}

// exactGP adapts the persistent grid-search HyperFitter — the reference
// implementation the approximate backends are tested against. Fit keeps
// the previous posterior when the sweep fails, exactly reproducing the
// pre-interface BayesOpt refit semantics.
type exactGP struct {
	fitter *gp.HyperFitter
	model  *gp.GP
}

func (s *exactGP) Name() string { return KindGP }

func (s *exactGP) Fit(xs [][]float64, ys []float64) error {
	m, err := s.fitter.Fit(xs, ys)
	if err == nil {
		s.model = m
	}
	return err
}

// Extend implements Extender. The HyperFitter already detects appended
// samples and grows every grid factorization in O(n²) per row, so
// extension is a Fit call; results are bit-identical to a from-scratch
// sweep.
func (s *exactGP) Extend(xs [][]float64, ys []float64) bool {
	return s.Fit(xs, ys) == nil
}

// RefitHypers implements HyperRefitter by dropping every cached grid
// factorization and sweeping from scratch.
func (s *exactGP) RefitHypers(xs [][]float64, ys []float64) error {
	s.fitter = gp.NewHyperFitter(gp.KindMatern52)
	s.model = nil
	return s.Fit(xs, ys)
}

func (s *exactGP) Fitted() bool { return s.model != nil && s.model.Fitted() }

func (s *exactGP) Predict(x []float64) (float64, float64) {
	if s.model == nil {
		return 0, math.Inf(1)
	}
	return s.model.Predict(x)
}

func (s *exactGP) PredictBatch(xs [][]float64) ([]float64, []float64) {
	if s.model == nil {
		means := make([]float64, len(xs))
		stds := make([]float64, len(xs))
		for j := range stds {
			stds[j] = math.Inf(1)
		}
		return means, stds
	}
	return s.model.PredictBatch(xs)
}

// rffGP adapts the random-Fourier-feature approximation. The RFF keeps
// its last good posterior internally, so the adapter is a thin rename.
type rffGP struct {
	rff *gp.RFF
}

func (s *rffGP) Name() string { return KindRFFGP }

func (s *rffGP) Fit(xs [][]float64, ys []float64) error { return s.rff.Fit(xs, ys) }

// Extend implements Extender; RFF fits absorb appended rows into running
// feature Grams, paying O(Δn·D²).
func (s *rffGP) Extend(xs [][]float64, ys []float64) bool {
	return s.rff.Fit(xs, ys) == nil
}

// RefitHypers implements HyperRefitter: the accumulated feature Grams
// are dropped and rebuilt from scratch (the drawn features are seed-
// deterministic, so the refreshed posterior differs only by bounded
// floating-point accumulation drift).
func (s *rffGP) RefitHypers(xs [][]float64, ys []float64) error {
	s.rff.Reset()
	return s.rff.Fit(xs, ys)
}

func (s *rffGP) Fitted() bool { return s.rff.Fitted() }

func (s *rffGP) Predict(x []float64) (float64, float64) { return s.rff.Predict(x) }

func (s *rffGP) PredictBatch(xs [][]float64) ([]float64, []float64) {
	return s.rff.PredictBatch(xs)
}

// forest is the random-forest surrogate: every Fit retrains from a seed
// derived from (surrogate seed, sample size), making the fitted forest a
// pure function of (seed, data) — byte-identical across reruns, worker
// counts, and scheduling. Per-tree bootstraps are capped so fits stay
// near-linear in history size.
type forest struct {
	seed  int64
	cfg   learn.ForestConfig
	model *learn.Forest
}

// forestSampleCap bounds each tree's bootstrap sample. 512 points per
// tree across 40 trees sees far more than any single exact-GP-feasible
// history while keeping the quadratic CART split search bounded.
const forestSampleCap = 512

func newForest(seed int64) *forest {
	return &forest{
		seed: seed,
		cfg: learn.ForestConfig{
			Trees:     40,
			SampleCap: forestSampleCap,
		},
	}
}

func (s *forest) Name() string { return KindForest }

func (s *forest) Fit(xs [][]float64, ys []float64) error {
	rng := stat.NewRNG(stat.DeriveSeed(s.seed, "forest", strconv.Itoa(len(xs))))
	m, err := learn.FitForest(s.cfg, xs, ys, rng)
	if err == nil {
		s.model = m
	}
	return err
}

func (s *forest) Fitted() bool { return s.model != nil }

func (s *forest) Predict(x []float64) (float64, float64) {
	if s.model == nil {
		return 0, math.Inf(1)
	}
	return s.model.PredictWithSpread(x)
}

func (s *forest) PredictBatch(xs [][]float64) ([]float64, []float64) {
	means := make([]float64, len(xs))
	stds := make([]float64, len(xs))
	if s.model == nil {
		for j := range stds {
			stds[j] = math.Inf(1)
		}
		return means, stds
	}
	for j, x := range xs {
		means[j], stds[j] = s.model.PredictWithSpread(x)
	}
	return means, stds
}
