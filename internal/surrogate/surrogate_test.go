package surrogate

import (
	"math"
	"strings"
	"testing"

	"seamlesstune/internal/stat"
)

func sample(seed int64, n, dim int) (xs [][]float64, ys []float64) {
	rng := stat.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		y := 0.0
		for d := range x {
			x[d] = rng.Float64()
			y += (x[d] - 0.5) * (x[d] - 0.5)
		}
		xs = append(xs, x)
		ys = append(ys, y+0.02*rng.NormFloat64())
	}
	return xs, ys
}

func TestRegistry(t *testing.T) {
	want := []string{"gp", "rffgp", "forest"}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		if !Valid(name) {
			t.Errorf("Valid(%q) = false", name)
		}
		m, err := New(Config{Kind: name, Seed: 1})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	if Valid("") || Valid("bogus") {
		t.Error("Valid accepted an unknown name")
	}
	// Empty kind resolves to the default exact GP.
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != KindGP {
		t.Errorf("default kind = %q, want %q", m.Name(), KindGP)
	}
	if _, err := New(Config{Kind: "bogus"}); err == nil {
		t.Error("New(bogus) did not error")
	} else if !strings.Contains(err.Error(), "gp, rffgp, forest") {
		t.Errorf("error %q does not name the accepted list", err)
	}
}

// Every backend honors the Model contract: unfitted predictions are
// (0, +Inf), fits succeed on real data, PredictBatch matches Predict,
// and the posterior mean roughly tracks the target function.
func TestModelContract(t *testing.T) {
	xs, ys := sample(1, 60, 3)
	qs, qys := sample(2, 30, 3)
	for _, name := range Names() {
		m, err := New(Config{Kind: name, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if m.Fitted() {
			t.Errorf("%s: fitted before Fit", name)
		}
		if mean, std := m.Predict(qs[0]); mean != 0 || !math.IsInf(std, 1) {
			t.Errorf("%s: unfitted Predict = (%v, %v), want (0, +Inf)", name, mean, std)
		}
		if _, stds := m.PredictBatch(qs[:2]); !math.IsInf(stds[0], 1) {
			t.Errorf("%s: unfitted PredictBatch std = %v, want +Inf", name, stds[0])
		}
		if err := m.Fit(xs, ys); err != nil {
			t.Fatalf("%s: Fit: %v", name, err)
		}
		if !m.Fitted() {
			t.Fatalf("%s: not fitted after Fit", name)
		}
		bm, bs := m.PredictBatch(qs)
		var sse, sst, meanY float64
		for _, y := range qys {
			meanY += y
		}
		meanY /= float64(len(qys))
		for j, q := range qs {
			pm, ps := m.Predict(q)
			if pm != bm[j] || ps != bs[j] {
				t.Fatalf("%s: PredictBatch diverges from Predict at %d", name, j)
			}
			sse += (bm[j] - qys[j]) * (bm[j] - qys[j])
			sst += (qys[j] - meanY) * (qys[j] - meanY)
		}
		if sse >= sst {
			t.Errorf("%s: posterior mean no better than predicting the mean (SSE %.3f >= SST %.3f)",
				name, sse, sst)
		}
	}
}

// Capability surfaces: the GP-family backends extend and hyper-refit;
// the forest (which retrains wholesale every Fit) exposes neither.
func TestCapabilities(t *testing.T) {
	for _, tc := range []struct {
		kind       string
		ext, refit bool
	}{
		{KindGP, true, true},
		{KindRFFGP, true, true},
		{KindForest, false, false},
	} {
		m, err := New(Config{Kind: tc.kind, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(Extender); ok != tc.ext {
			t.Errorf("%s: Extender = %v, want %v", tc.kind, ok, tc.ext)
		}
		if _, ok := m.(HyperRefitter); ok != tc.refit {
			t.Errorf("%s: HyperRefitter = %v, want %v", tc.kind, ok, tc.refit)
		}
	}
}

// Extending with appended rows then hyper-refitting from scratch must
// produce identical posteriors for the GP-family backends — the
// incremental paths are exact, not approximate.
func TestExtendThenRefitHypersIdentical(t *testing.T) {
	xs, ys := sample(3, 45, 3)
	qs, _ := sample(4, 20, 3)
	for _, kind := range []string{KindGP, KindRFFGP} {
		m, err := New(Config{Kind: kind, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for i := 10; i <= len(xs); i += 7 {
			hi := i
			if hi > len(xs) {
				hi = len(xs)
			}
			if !m.(Extender).Extend(xs[:hi], ys[:hi]) {
				t.Fatalf("%s: Extend(%d rows) failed", kind, hi)
			}
		}
		if !m.(Extender).Extend(xs, ys) {
			t.Fatalf("%s: final Extend failed", kind)
		}
		im, is := m.PredictBatch(qs)
		if err := m.(HyperRefitter).RefitHypers(xs, ys); err != nil {
			t.Fatalf("%s: RefitHypers: %v", kind, err)
		}
		rm, rs := m.PredictBatch(qs)
		for j := range qs {
			if im[j] != rm[j] || is[j] != rs[j] {
				t.Fatalf("%s: query %d: incremental (%v, %v) != refit (%v, %v)",
					kind, j, im[j], is[j], rm[j], rs[j])
			}
		}
	}
}

// The forest surrogate is a pure function of (seed, data): refitting on
// the same sample reproduces the posterior bit for bit, and different
// seeds differ.
func TestForestSurrogateDeterminism(t *testing.T) {
	xs, ys := sample(5, 80, 4)
	qs, _ := sample(6, 25, 4)
	fit := func(seed int64) ([]float64, []float64) {
		m, err := New(Config{Kind: KindForest, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		return m.PredictBatch(qs)
	}
	m1, s1 := fit(7)
	m2, s2 := fit(7)
	for j := range qs {
		if m1[j] != m2[j] || s1[j] != s2[j] {
			t.Fatalf("same seed diverged at query %d", j)
		}
	}
	m3, _ := fit(8)
	same := true
	for j := range qs {
		if m1[j] != m3[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical forests")
	}
}

// A failed fit must keep the previous posterior (stale beats absent).
func TestFitFailureKeepsPosterior(t *testing.T) {
	xs, ys := sample(9, 30, 3)
	for _, name := range Names() {
		m, err := New(Config{Kind: name, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Fit(xs, ys); err != nil {
			t.Fatal(err)
		}
		before, _ := m.Predict(xs[0])
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty Fit did not error", name)
		}
		if !m.Fitted() {
			t.Fatalf("%s: posterior lost after failed Fit", name)
		}
		if after, _ := m.Predict(xs[0]); after != before {
			t.Errorf("%s: posterior changed after failed Fit", name)
		}
	}
}
