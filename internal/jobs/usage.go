package jobs

import "sort"

// Usage is the per-tenant accounting the tuning-as-a-service contract
// needs to settle a bill and show SLO posture: how many jobs the tenant
// submitted, how many budgeted trials their sessions burned, the
// cumulative tuning spend in dollars, and the most recent SLO attainment
// reported by a session.
type Usage struct {
	Tenant string `json:"tenant"`
	// Jobs counts submissions accepted for the tenant.
	Jobs int `json:"jobs"`
	// Trials counts budgeted executions across the tenant's sessions.
	Trials int `json:"trials"`
	// SpendUSD is the tenant's cumulative tuning spend.
	SpendUSD float64 `json:"spendUSD"`
	// Attainment is the latest reported fraction of active SLO clauses the
	// tenant's incumbent meets (0 until a session reports one).
	Attainment float64 `json:"attainment"`
	// HasAttainment distinguishes "no session reported yet" from a
	// reported attainment of zero.
	HasAttainment bool `json:"hasAttainment,omitempty"`
}

// tenantUsage is the engine-internal mutable record behind Usage.
type tenantUsage struct {
	Usage
}

func (e *Engine) usageFor(tenant string) *tenantUsage {
	u := e.usage[tenant]
	if u == nil {
		u = &tenantUsage{Usage: Usage{Tenant: tenant}}
		e.usage[tenant] = u
	}
	return u
}

// AddUsage accrues trials and spend to a tenant's account. The usage
// pump in tuneserve calls it per telemetry event, so deltas are small
// and frequent.
func (e *Engine) AddUsage(tenant string, trials int, spendUSD float64) {
	if tenant == "" {
		return
	}
	e.mu.Lock()
	u := e.usageFor(tenant)
	u.Trials += trials
	u.SpendUSD += spendUSD
	e.mu.Unlock()
}

// SetAttainment records the tenant's most recent SLO attainment.
func (e *Engine) SetAttainment(tenant string, attainment float64) {
	if tenant == "" {
		return
	}
	e.mu.Lock()
	u := e.usageFor(tenant)
	u.Attainment = attainment
	u.HasAttainment = true
	e.mu.Unlock()
}

// Usage returns every tenant's accounting, sorted by tenant.
func (e *Engine) Usage() []Usage {
	e.mu.Lock()
	out := make([]Usage, 0, len(e.usage))
	for _, u := range e.usage {
		out = append(out, u.Usage)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantUsage returns one tenant's accounting; ok is false when the
// engine has never seen the tenant.
func (e *Engine) TenantUsage(tenant string) (Usage, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.usage[tenant]
	if !ok {
		return Usage{}, false
	}
	return u.Usage, true
}
