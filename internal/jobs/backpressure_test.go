package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Admission control: a saturated storage backend sheds submissions with
// ErrBackpressure instead of queuing work whose results could not be
// persisted, and the shed count and saturation state surface in Stats.
func TestBackpressureShedsSubmissions(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	var saturated atomic.Bool
	e.SetBackpressure(func() (bool, time.Duration) {
		return saturated.Load(), 2 * time.Second
	})

	j, err := e.Submit("t1", func(ctx context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatalf("unsaturated submit rejected: %v", err)
	}
	if _, err := e.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}

	saturated.Store(true)
	if _, err := e.Submit("t1", func(ctx context.Context) (any, error) { return 2, nil }); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("saturated submit error = %v, want ErrBackpressure", err)
	}
	if ok, retry := e.Backpressure(); !ok || retry != 2*time.Second {
		t.Fatalf("Backpressure() = %v, %v", ok, retry)
	}
	st := e.Stats()
	if st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}
	if !st.Backpressure {
		t.Error("Stats.Backpressure = false under saturation")
	}

	// Pressure clears; admission resumes and the flag drops.
	saturated.Store(false)
	j, err = e.Submit("t1", func(ctx context.Context) (any, error) { return 3, nil })
	if err != nil {
		t.Fatalf("submit after pressure cleared: %v", err)
	}
	if _, err := e.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Backpressure {
		t.Error("Stats.Backpressure still set after pressure cleared")
	}
}

// A nil probe (the default) never sheds.
func TestBackpressureDefaultsOff(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	if ok, _ := e.Backpressure(); ok {
		t.Error("Backpressure() = true with no probe installed")
	}
	j, err := e.Submit("t1", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Wait(context.Background(), j.ID); err != nil {
		t.Fatal(err)
	}
}
