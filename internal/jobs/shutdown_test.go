package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCloseLeavesNoJobNonTerminal floods a small engine with slow jobs,
// closes it mid-flight, and verifies every submission reached a terminal
// state: running jobs finish (their context is cancelled, the worker
// drains), queued jobs fail with ErrClosed. Nothing is left queued or
// running — the invariant tuneserve's shutdown path relies on.
func TestCloseLeavesNoJobNonTerminal(t *testing.T) {
	e := NewEngine(2, 0)
	for i := 0; i < 24; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%3)
		_, err := e.Submit(tenant, func(ctx context.Context) (any, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return "done", nil
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	for _, j := range e.List() {
		if !j.State.Terminal() {
			t.Errorf("job %s left in state %q after Close", j.ID, j.State)
		}
		if j.FinishedAt == nil {
			t.Errorf("job %s has no FinishedAt after Close", j.ID)
		}
		if j.State == StateFailed && j.StartSeq == 0 && j.Error != ErrClosed.Error() {
			t.Errorf("never-started job %s failed with %q, want %q", j.ID, j.Error, ErrClosed.Error())
		}
	}
	st := e.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("Stats after Close = %+v, want 0 queued / 0 running", st)
	}
}

// TestWaitReturnsAfterClose checks that a waiter blocked on a job that
// never gets to run is released by Close with a terminal snapshot, rather
// than hanging forever.
func TestWaitReturnsAfterClose(t *testing.T) {
	e := NewEngine(1, 0)
	block := make(chan struct{})
	e.Submit("t1", func(ctx context.Context) (any, error) {
		<-block
		return nil, ctx.Err()
	})
	queued, _ := e.Submit("t1", func(ctx context.Context) (any, error) { return "never", nil })

	done := make(chan Job, 1)
	go func() {
		j, _ := e.Wait(context.Background(), queued.ID)
		done <- j
	}()
	close(block)
	e.Close()

	select {
	case j := <-done:
		if !j.State.Terminal() {
			t.Errorf("waiter got non-terminal state %q", j.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after Close")
	}
}

// TestPerTenantFIFOUnderConcurrentSubmitAndClose races several
// submitter goroutines per tenant against an engine shutdown and checks,
// on the event clock, that every pair of consecutively-submitted jobs of
// one tenant that both ran did so strictly in order: the later one
// started only after the earlier one finished. Run under -race this also
// exercises the submit/worker/close interleavings for data races.
func TestPerTenantFIFOUnderConcurrentSubmitAndClose(t *testing.T) {
	e := NewEngine(4, 0)
	const tenants = 3
	// ids[tn] records one tenant's job IDs in submission order; a single
	// submitter goroutine per tenant makes "submission order" well defined.
	ids := make([][]string, tenants)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				j, err := e.Submit(fmt.Sprintf("tenant-%d", tn), func(ctx context.Context) (any, error) {
					return nil, ctx.Err()
				})
				if err != nil {
					return // engine closed underneath us — expected
				}
				ids[tn] = append(ids[tn], j.ID)
			}
		}(tn)
	}
	// Let submissions and the workers make progress, then slam the door.
	time.Sleep(2 * time.Millisecond)
	e.Close()
	wg.Wait()

	for tn := 0; tn < tenants; tn++ {
		var prev *Job
		sawUnstarted := false
		for _, id := range ids[tn] {
			j, ok := e.Get(id)
			if !ok {
				t.Fatalf("submitted job %s not found", id)
			}
			if !j.State.Terminal() {
				t.Errorf("job %s not terminal after Close", id)
			}
			if j.StartSeq == 0 {
				// Failed while queued. FIFO means everything submitted
				// after it must also have stayed queued.
				sawUnstarted = true
				continue
			}
			if sawUnstarted {
				t.Errorf("tenant %d: %s ran although an earlier submission never started", tn, id)
			}
			if prev != nil && j.StartSeq <= prev.FinishSeq {
				// Both ran: the earlier submission must have fully finished
				// before the later one started.
				t.Errorf("tenant %d: %s started (seq %d) before %s finished (seq %d)",
					tn, id, j.StartSeq, prev.ID, prev.FinishSeq)
			}
			cp := j
			prev = &cp
		}
	}
}
