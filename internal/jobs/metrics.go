package jobs

import (
	"time"

	"seamlesstune/internal/obs"
	"seamlesstune/internal/simcache"
)

// Job-engine metrics. Queue depth and worker occupancy are gauges
// reflecting the live engine; submission/finish counters and the
// wait/run-time histograms accumulate per tenant, so /metrics shows which
// tenants are generating load and how long their jobs sit queued — the
// multi-tenant fairness signal the per-tenant FIFO design is about.
var (
	mSubmitted = obs.Default().CounterVec("jobs_submitted_total",
		"Jobs accepted by the engine, by tenant.", "tenant")
	mFinished = obs.Default().CounterVec("jobs_finished_total",
		"Jobs reaching a terminal state, by final state.", "state")
	mQueueDepth = obs.Default().Gauge("jobs_queue_depth",
		"Jobs admitted but not yet started (waiting in a tenant queue).")
	mRunning = obs.Default().Gauge("jobs_running",
		"Jobs currently executing on a worker.")
	mWorkers = obs.Default().Gauge("jobs_workers",
		"Size of the engine's worker pool.")
	mWaitSeconds = obs.Default().HistogramVecSketched("jobs_wait_seconds",
		"Time from submission to start, by tenant.",
		obs.ExpBuckets(1e-4, 4, 12), "tenant")
	mRunSeconds = obs.Default().HistogramVecSketched("jobs_run_seconds",
		"Time from start to finish, by tenant.",
		obs.ExpBuckets(1e-4, 4, 12), "tenant")
	mShed = obs.Default().Counter("jobs_shed_total",
		"Submissions rejected because the persistence tier was saturated.")
)

// Stats is a point-in-time summary of the engine, surfaced by tuneserve's
// readiness endpoint.
type Stats struct {
	// Workers is the fixed worker-pool size.
	Workers int `json:"workers"`
	// Queued counts admitted jobs that have not started.
	Queued int `json:"queued"`
	// Running counts jobs currently executing.
	Running int `json:"running"`
	// Jobs counts every submission the engine has accepted.
	Jobs int `json:"jobs"`
	// Cache reports the shared simulator evaluation cache, when one is
	// wired via SetCacheStats (nil otherwise).
	Cache *simcache.Stats `json:"cache,omitempty"`
	// Shed counts submissions rejected under storage backpressure;
	// Backpressure reports whether the persistence tier is saturated
	// right now (both zero without SetBackpressure).
	Shed         int64 `json:"shed,omitempty"`
	Backpressure bool  `json:"backpressure,omitempty"`
}

// SetBackpressure wires an admission probe: when fn reports saturation,
// Submit sheds the job with ErrBackpressure instead of queueing work the
// persistence tier cannot absorb. fn is called with the engine lock held
// and must not block (the storage backends' probes are channel-depth
// checks). The returned delay is surfaced by Backpressure for
// Retry-After headers. Pass nil to detach.
func (e *Engine) SetBackpressure(fn func() (bool, time.Duration)) {
	e.mu.Lock()
	e.backpressure = fn
	e.mu.Unlock()
}

// Backpressure reports whether submissions are currently being shed and
// the suggested client retry delay.
func (e *Engine) Backpressure() (bool, time.Duration) {
	e.mu.Lock()
	fn := e.backpressure
	e.mu.Unlock()
	if fn == nil {
		return false, 0
	}
	return fn()
}

// SetCacheStats wires a simulator-cache snapshot source into Stats, so
// readiness surfaces (tuneserve's /healthz) report hit rates alongside
// queue occupancy. Pass nil to detach.
func (e *Engine) SetCacheStats(fn func() simcache.Stats) {
	e.mu.Lock()
	e.cacheStats = fn
	e.mu.Unlock()
}

// Stats returns a consistent snapshot of the engine's occupancy.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	fn := e.cacheStats
	bp := e.backpressure
	st := Stats{
		Workers: e.workers,
		Queued:  e.queued - e.running,
		Running: e.running,
		Jobs:    len(e.order),
		Shed:    e.shed,
	}
	e.mu.Unlock()
	// Snapshot the cache outside the engine lock: the cache has its own
	// shard locks and no dependency back into the engine.
	if fn != nil {
		cs := fn()
		st.Cache = &cs
	}
	if bp != nil {
		st.Backpressure, _ = bp()
	}
	return st
}
