// Package jobs implements the asynchronous job engine behind tuneserve's
// /v1/jobs API: a bounded worker pool drains per-tenant FIFO queues, so a
// slow tuning session of one tenant never blocks another tenant's
// submissions — the concurrency the paper's cloud-service vision (§VI)
// requires — while each tenant's own submissions still run strictly in
// order, preserving per-workload tuning semantics (warm-starting from the
// tenant's earlier sessions, deterministic submission numbering).
//
// The engine is deliberately generic: a job is any function of a
// context. cmd/tuneserve wires it to core.Service.TunePipeline.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"seamlesstune/internal/simcache"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Queued → Running → Done | Failed.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Task is the unit of work a job runs. The context is cancelled when the
// engine shuts down.
type Task func(ctx context.Context) (any, error)

// Job is an immutable snapshot of one submission's state.
type Job struct {
	ID          string     `json:"id"`
	Tenant      string     `json:"tenant"`
	State       State      `json:"state"`
	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`
	// Result holds the task's return value once State is StateDone.
	Result any `json:"result,omitempty"`
	// Error holds the task's error message once State is StateFailed.
	Error string `json:"error,omitempty"`
	// StartSeq and FinishSeq order this job's start and finish on the
	// engine's global event clock (1-based; 0 = not yet). Start and
	// finish events share one clock, so "job B started after job A
	// finished" is exactly B.StartSeq > A.FinishSeq — how tests verify
	// scheduling properties such as per-tenant FIFO.
	StartSeq  int64 `json:"startSeq,omitempty"`
	FinishSeq int64 `json:"finishSeq,omitempty"`
	// Surrogate echoes the resolved surrogate model backend the job's
	// tuning sessions fit (from SubmitOpts; empty when the caller did not
	// record one).
	Surrogate string `json:"surrogate,omitempty"`
	// Pruning echoes whether the job's tuning sessions run with
	// significance-aware config-space pruning (from SubmitOpts).
	Pruning bool `json:"pruning,omitempty"`
	// Diagnostics echoes whether the job's tuning sessions publish tuner
	// explainability diagnostics (decide/model_health/stall events).
	Diagnostics bool `json:"diagnostics,omitempty"`
}

// Options carries caller-visible metadata attached to a submission and
// echoed verbatim in every Job snapshot.
type Options struct {
	// Surrogate is the resolved surrogate model backend the job's tuning
	// sessions will use.
	Surrogate string
	// Pruning marks the job's sessions as running with significance-aware
	// config-space pruning.
	Pruning bool
	// Diagnostics marks the job's sessions as publishing tuner
	// explainability diagnostics.
	Diagnostics bool
}

// job is the engine-internal mutable record behind Job snapshots.
type job struct {
	Job
	task Task
	done chan struct{}
}

// tenantQueue is one tenant's pending work. running marks that a worker
// currently owns the tenant, which is what serializes a tenant's jobs.
type tenantQueue struct {
	pending []*job
	running bool
}

// Errors returned by Submit and Wait.
var (
	ErrClosed    = errors.New("jobs: engine closed")
	ErrQueueFull = errors.New("jobs: queue full")
	ErrNotFound  = errors.New("jobs: no such job")
	// ErrBackpressure means the persistence tier behind the engine is
	// saturated and the submission was shed — the client should retry
	// after the delay Backpressure reports.
	ErrBackpressure = errors.New("jobs: storage backpressure")
)

// Engine runs submitted jobs on a fixed pool of workers with per-tenant
// FIFO ordering. Construct with NewEngine; Close releases the workers.
type Engine struct {
	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	order     []*job // submission order, for List
	tenants   map[string]*tenantQueue
	usage     map[string]*tenantUsage
	ready     []string // tenants with pending work and no active worker
	nextID    int
	queued    int
	running   int
	workers   int
	maxQueued int
	eventSeq  int64
	closed    bool
	// cacheStats, when set, snapshots the shared simulator cache for
	// Stats (see SetCacheStats).
	cacheStats func() simcache.Stats
	// backpressure, when set, probes the persistence tier's admission
	// state before accepting a job (see SetBackpressure); shed counts
	// submissions rejected by it.
	backpressure func() (bool, time.Duration)
	shed         int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewEngine starts an engine with the given number of workers. maxQueued
// bounds the number of not-yet-finished jobs admitted at once (0 means
// unbounded); when full, Submit returns ErrQueueFull — backpressure
// instead of unbounded memory growth under heavy traffic.
func NewEngine(workers, maxQueued int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		jobs:      make(map[string]*job),
		tenants:   make(map[string]*tenantQueue),
		usage:     make(map[string]*tenantUsage),
		workers:   workers,
		maxQueued: maxQueued,
	}
	mWorkers.Set(float64(workers))
	e.cond = sync.NewCond(&e.mu)
	e.ctx, e.cancel = context.WithCancel(context.Background())
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// Submit enqueues a task for the tenant and returns the queued job
// snapshot immediately.
func (e *Engine) Submit(tenant string, task Task) (Job, error) {
	return e.SubmitOpts(tenant, task, Options{})
}

// SubmitOpts is Submit with caller-visible metadata attached to the job.
func (e *Engine) SubmitOpts(tenant string, task Task, opts Options) (Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Job{}, ErrClosed
	}
	if e.maxQueued > 0 && e.queued >= e.maxQueued {
		return Job{}, ErrQueueFull
	}
	if e.backpressure != nil {
		if saturated, _ := e.backpressure(); saturated {
			e.shed++
			mShed.Inc()
			return Job{}, ErrBackpressure
		}
	}
	e.nextID++
	j := &job{
		Job: Job{
			ID:          fmt.Sprintf("job-%06d", e.nextID),
			Tenant:      tenant,
			State:       StateQueued,
			SubmittedAt: time.Now().UTC(),
			Surrogate:   opts.Surrogate,
			Pruning:     opts.Pruning,
			Diagnostics: opts.Diagnostics,
		},
		task: task,
		done: make(chan struct{}),
	}
	e.jobs[j.ID] = j
	e.order = append(e.order, j)
	e.queued++
	e.usageFor(tenant).Jobs++
	mSubmitted.With(tenant).Inc()
	mQueueDepth.Add(1)
	tq := e.tenants[tenant]
	if tq == nil {
		tq = &tenantQueue{}
		e.tenants[tenant] = tq
	}
	tq.pending = append(tq.pending, j)
	// The tenant becomes ready only when nothing of theirs is running and
	// this is their only pending job; otherwise they are already ready or
	// will be re-armed when their current job finishes.
	if !tq.running && len(tq.pending) == 1 {
		e.ready = append(e.ready, tenant)
		e.cond.Signal()
	}
	return j.Job, nil
}

// worker claims ready tenants and runs the head of their queue. A tenant
// is owned by at most one worker at a time, so a tenant's jobs run in
// submission order even with many workers.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.ready) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.ready) == 0 && e.closed {
			e.mu.Unlock()
			return
		}
		tenant := e.ready[0]
		e.ready = e.ready[1:]
		tq := e.tenants[tenant]
		j := tq.pending[0]
		tq.pending = tq.pending[1:]
		tq.running = true
		j.State = StateRunning
		now := time.Now().UTC()
		j.StartedAt = &now
		e.eventSeq++
		j.StartSeq = e.eventSeq
		e.running++
		mQueueDepth.Add(-1)
		mRunning.Add(1)
		mWaitSeconds.With(tenant).Observe(now.Sub(j.SubmittedAt).Seconds())
		e.mu.Unlock()

		result, err := j.task(e.ctx)

		e.mu.Lock()
		if err != nil {
			j.State = StateFailed
			j.Error = err.Error()
		} else {
			j.State = StateDone
			j.Result = result
		}
		fin := time.Now().UTC()
		j.FinishedAt = &fin
		e.eventSeq++
		j.FinishSeq = e.eventSeq
		e.queued--
		e.running--
		mRunning.Add(-1)
		mFinished.With(string(j.State)).Inc()
		mRunSeconds.With(tenant).Observe(fin.Sub(now).Seconds())
		tq.running = false
		if len(tq.pending) > 0 {
			e.ready = append(e.ready, tenant)
			e.cond.Signal()
		}
		close(j.done)
		e.mu.Unlock()
	}
}

// Get returns a snapshot of the job with the given ID.
func (e *Engine) Get(id string) (Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// List returns snapshots of all jobs in submission order.
func (e *Engine) List() []Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Job, len(e.order))
	for i, j := range e.order {
		out[i] = j.Job
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx is done, and
// returns the final snapshot.
func (e *Engine) Wait(ctx context.Context, id string) (Job, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return Job{}, ErrNotFound
	}
	select {
	case <-j.done:
		return e.mustGet(id), nil
	case <-ctx.Done():
		return e.mustGet(id), ctx.Err()
	}
}

func (e *Engine) mustGet(id string) Job {
	snap, _ := e.Get(id)
	return snap
}

// Close stops accepting submissions, cancels the context running tasks
// see, waits for the workers to exit, and fails every job still queued.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cancel()
	// Wake every worker so those idle in Wait observe closed. Workers
	// still drain tenants already in the ready list; their tasks see the
	// cancelled context and return quickly.
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()

	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now().UTC()
	for _, j := range e.order {
		if !j.State.Terminal() {
			j.State = StateFailed
			j.Error = ErrClosed.Error()
			j.FinishedAt = &now
			e.queued--
			mQueueDepth.Add(-1)
			mFinished.With(string(StateFailed)).Inc()
			close(j.done)
		}
	}
}
