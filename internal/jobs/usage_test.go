package jobs

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestUsageAccounting(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()

	noop := func(ctx context.Context) (any, error) { return nil, nil }
	for i := 0; i < 3; i++ {
		if _, err := e.Submit("acme", noop); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit("globex", noop); err != nil {
		t.Fatal(err)
	}
	e.AddUsage("acme", 10, 0.5)
	e.AddUsage("acme", 5, 0.25)
	e.SetAttainment("acme", 0.75)

	u, ok := e.TenantUsage("acme")
	if !ok {
		t.Fatal("acme usage missing")
	}
	if u.Jobs != 3 || u.Trials != 15 || math.Abs(u.SpendUSD-0.75) > 1e-12 {
		t.Errorf("acme usage = %+v", u)
	}
	if !u.HasAttainment || u.Attainment != 0.75 {
		t.Errorf("acme attainment = %+v", u)
	}

	g, ok := e.TenantUsage("globex")
	if !ok {
		t.Fatal("globex usage missing")
	}
	if g.Jobs != 1 || g.Trials != 0 || g.SpendUSD != 0 || g.HasAttainment {
		t.Errorf("globex usage = %+v", g)
	}

	if _, ok := e.TenantUsage("nobody"); ok {
		t.Error("unknown tenant reported usage")
	}

	all := e.Usage()
	if len(all) != 2 || all[0].Tenant != "acme" || all[1].Tenant != "globex" {
		t.Errorf("Usage() = %+v, want sorted [acme globex]", all)
	}

	// Empty-tenant guards.
	e.AddUsage("", 1, 1)
	e.SetAttainment("", 1)
	if len(e.Usage()) != 2 {
		t.Error("empty tenant leaked into usage")
	}
}

func TestUsageConcurrent(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				e.AddUsage("acme", 1, 0.01)
				e.SetAttainment("acme", 0.5)
				e.Usage()
			}
		}()
	}
	wg.Wait()
	u, _ := e.TenantUsage("acme")
	if u.Trials != 2000 || math.Abs(u.SpendUSD-20) > 1e-9 {
		t.Errorf("usage after concurrent accrual = %+v", u)
	}
}
