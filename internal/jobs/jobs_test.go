package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsAndReportsResult(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	j, err := e.Submit("t1", func(ctx context.Context) (any, error) { return 41 + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	final, err := e.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result != 42 {
		t.Fatalf("final = %+v", final)
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Error("timestamps not recorded")
	}
}

func TestFailedTask(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	j, _ := e.Submit("t1", func(ctx context.Context) (any, error) {
		return nil, errors.New("boom")
	})
	final, err := e.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Error != "boom" {
		t.Fatalf("final = %+v", final)
	}
}

func TestPerTenantFIFO(t *testing.T) {
	e := NewEngine(4, 0)
	defer e.Close()
	var mu sync.Mutex
	events := make(map[string][]int) // tenant → job indexes in execution order
	var ids []string
	for i := 0; i < 16; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%4)
		idx := i / 4
		j, err := e.Submit(tenant, func(ctx context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			mu.Lock()
			events[tenant] = append(events[tenant], idx)
			mu.Unlock()
			return idx, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		if _, err := e.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	for tenant, seq := range events {
		for i, idx := range seq {
			if idx != i {
				t.Errorf("tenant %s executed out of order: %v", tenant, seq)
				break
			}
		}
	}
	// The engine-recorded sequences agree: within a tenant, every job
	// finishes before the next one starts.
	jobs := e.List()
	byTenant := make(map[string][]Job)
	for _, j := range jobs {
		byTenant[j.Tenant] = append(byTenant[j.Tenant], j)
	}
	for tenant, js := range byTenant {
		for i := 1; i < len(js); i++ {
			if js[i].StartSeq <= js[i-1].FinishSeq {
				t.Errorf("tenant %s job %d started (seq %d) before job %d finished (seq %d)",
					tenant, i, js[i].StartSeq, i-1, js[i-1].FinishSeq)
			}
		}
	}
}

func TestDistinctTenantsRunInParallel(t *testing.T) {
	e := NewEngine(4, 0)
	defer e.Close()
	var running, peak atomic.Int32
	block := make(chan struct{})
	var ids []string
	for i := 0; i < 4; i++ {
		j, _ := e.Submit(fmt.Sprintf("t%d", i), func(ctx context.Context) (any, error) {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-block
			running.Add(-1)
			return nil, nil
		})
		ids = append(ids, j.ID)
	}
	// Give the pool a moment to pick everything up, then release.
	deadline := time.Now().Add(2 * time.Second)
	for running.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(block)
	for _, id := range ids {
		e.Wait(context.Background(), id)
	}
	if peak.Load() != 4 {
		t.Errorf("peak concurrency = %d, want 4 (distinct tenants must run in parallel)", peak.Load())
	}
}

func TestQueueBound(t *testing.T) {
	e := NewEngine(1, 2)
	defer e.Close()
	block := make(chan struct{})
	defer close(block)
	e.Submit("t", func(ctx context.Context) (any, error) { <-block; return nil, nil })
	e.Submit("t", func(ctx context.Context) (any, error) { return nil, nil })
	if _, err := e.Submit("t", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

func TestWaitContextCancel(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	block := make(chan struct{})
	defer close(block)
	j, _ := e.Submit("t", func(ctx context.Context) (any, error) { <-block; return nil, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := e.Wait(ctx, j.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.Wait(context.Background(), "job-nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job err = %v", err)
	}
}

func TestCloseFailsQueuedJobsAndRejectsNew(t *testing.T) {
	e := NewEngine(1, 0)
	started := make(chan struct{})
	j1, _ := e.Submit("t", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	j2, _ := e.Submit("t", func(ctx context.Context) (any, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return "ran", nil
	})
	<-started
	e.Close()
	for _, id := range []string{j1.ID, j2.ID} {
		final, ok := e.Get(id)
		if !ok || !final.State.Terminal() {
			t.Errorf("job %s not terminal after Close: %+v", id, final)
		}
	}
	if _, err := e.Submit("t", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close err = %v", err)
	}
	// Close is idempotent.
	e.Close()
}

func TestListSubmissionOrder(t *testing.T) {
	e := NewEngine(2, 0)
	defer e.Close()
	for i := 0; i < 5; i++ {
		e.Submit(fmt.Sprintf("t%d", i), func(ctx context.Context) (any, error) { return nil, nil })
	}
	jobs := e.List()
	if len(jobs) != 5 {
		t.Fatalf("List = %d jobs", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].ID <= jobs[i-1].ID {
			t.Errorf("List out of submission order: %v before %v", jobs[i-1].ID, jobs[i].ID)
		}
	}
}

// SubmitOpts metadata must survive into every snapshot of the job's
// lifecycle, and plain Submit must leave it empty.
func TestSubmitOptsSurrogateEchoed(t *testing.T) {
	e := NewEngine(1, 0)
	defer e.Close()
	j, err := e.SubmitOpts("t1", func(ctx context.Context) (any, error) { return "ok", nil },
		Options{Surrogate: "rffgp"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Surrogate != "rffgp" {
		t.Fatalf("submitted snapshot surrogate = %q", j.Surrogate)
	}
	final, err := e.Wait(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Surrogate != "rffgp" {
		t.Errorf("final snapshot surrogate = %q", final.Surrogate)
	}
	plain, err := e.Submit("t1", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if plain.Surrogate != "" {
		t.Errorf("plain Submit recorded surrogate %q", plain.Surrogate)
	}
}
