package core

import (
	"context"
	"time"

	"seamlesstune/internal/obs"
)

// Service-layer metrics: executions driven through the service (every one
// lands in the history store, so this is also the tuning bill §IV-C wants
// bounded), end-to-end pipeline times, and per-phase times for the Fig. 1
// stages.
var (
	mExecutions = obs.Default().Counter("core_executions_total",
		"Workload executions driven by the tuning service.")
	mPipelineSeconds = obs.Default().HistogramSketched("core_pipeline_seconds",
		"Wall time of full two-stage tuning pipelines.",
		obs.ExpBuckets(1e-3, 4, 12))
	mPhaseSeconds = obs.Default().HistogramVecSketched("core_phase_seconds",
		"Wall time of service phases (tune-cloud, probe, tune-disc, baseline).",
		obs.ExpBuckets(1e-4, 4, 12), "phase")
)

// phaseSpan opens a span for one service phase on the context's trace and
// returns the function that closes it, recording the phase duration. Use
// as: done := phaseSpan(ctx, "tune-cloud"); defer done().
func phaseSpan(ctx context.Context, phase string) func() {
	start := time.Now()
	sp := obs.FromContext(ctx).Start(phase, "core")
	return func() {
		mPhaseSeconds.With(phase).Observe(time.Since(start).Seconds())
		sp.End()
	}
}
