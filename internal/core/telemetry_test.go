package core

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/obs"
)

// runTelemetryPipeline drives one pipeline with an emitter attached and
// returns the published events in order.
func runTelemetryPipeline(t *testing.T, reg Registration) []obs.Event {
	t.Helper()
	svc := testService(t, 7)
	log := obs.NewEventLog(1 << 12)
	ctx := obs.NewEmitterContext(context.Background(),
		obs.Emitter{Log: log, Session: "job-1", Tenant: reg.Tenant, Workload: reg.Workload.Name()})
	if _, err := svc.TunePipeline(ctx, reg); err != nil {
		t.Fatal(err)
	}
	return log.Snapshot(0)
}

func TestPipelineTelemetryStream(t *testing.T) {
	reg := wcReg("acme")
	events := runTelemetryPipeline(t, reg)
	if len(events) == 0 {
		t.Fatal("no events published")
	}
	if events[0].Type != obs.EventSessionStart {
		t.Errorf("first event = %s, want session_start", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != obs.EventSessionEnd {
		t.Errorf("last event = %s, want session_end", last.Type)
	}
	// Budget: cloud 8 + probes 3 + disc 15 + baseline 1.
	if events[0].BudgetTrials != 27 {
		t.Errorf("budgetTrials = %d, want 27", events[0].BudgetTrials)
	}

	var trials, execs int
	var lastTrialNo int
	bestPrev := math.Inf(1)
	var spendPrev, spendFromCosts float64
	catalog := cloud.DefaultCatalog()
	for _, e := range events {
		if e.Session != "job-1" || e.Tenant != "acme" || e.Workload != reg.Workload.Name() {
			t.Fatalf("identity not stamped: %+v", e)
		}
		switch e.Type {
		case obs.EventTrial:
			trials++
			if e.Trial != lastTrialNo+1 {
				t.Errorf("trial numbering jumped: %d after %d", e.Trial, lastTrialNo)
			}
			lastTrialNo = e.Trial
			if e.Phase != "cloud" && e.Phase != "disc" {
				t.Errorf("trial %d: phase %q", e.Trial, e.Phase)
			}
			if e.BestSoFar != 0 {
				if e.BestSoFar > bestPrev+1e-12 {
					t.Errorf("trial %d: best-so-far rose %v -> %v", e.Trial, bestPrev, e.BestSoFar)
				}
				bestPrev = e.BestSoFar
				if e.RegretS < -1e-12 {
					t.Errorf("trial %d: negative regret %v", e.Trial, e.RegretS)
				}
			}
			fallthrough
		case obs.EventExecution:
			if e.Type == obs.EventExecution {
				execs++
				if e.Phase != "probe" && e.Phase != "baseline" {
					t.Errorf("execution phase %q", e.Phase)
				}
			}
			if e.SpendUSD < spendPrev-1e-12 {
				t.Errorf("spend decreased: %v -> %v", spendPrev, e.SpendUSD)
			}
			spendPrev = e.SpendUSD
			// Re-derive the trial cost from the advertised cluster and
			// runtime: CostUSD must be exactly ClusterSpec.CostOf.
			if e.Cluster != "" && !e.Failed {
				spec := parseClusterString(t, catalog, e.Cluster)
				if want := spec.CostOf(e.RuntimeS); math.Abs(e.CostUSD-want) > 1e-9 {
					t.Errorf("%s event cost %v != CostOf(%v) = %v on %s", e.Type, e.CostUSD, e.RuntimeS, want, e.Cluster)
				}
				spendFromCosts += e.CostUSD
			} else {
				spendFromCosts += e.CostUSD
			}
		}
	}
	if trials != 8+15 {
		t.Errorf("trial events = %d, want 23", trials)
	}
	if execs != 3+1 {
		t.Errorf("execution events = %d, want 4 (probes + baseline)", execs)
	}
	if math.Abs(spendPrev-spendFromCosts) > 1e-9 {
		t.Errorf("cumulative spend %v != Σ per-event cost %v", spendPrev, spendFromCosts)
	}
	if last.SpendUSD != spendPrev {
		t.Errorf("session_end spend %v != last cumulative %v", last.SpendUSD, spendPrev)
	}
}

func TestPipelineTelemetryViolation(t *testing.T) {
	reg := wcReg("acme")
	reg.TuningBudgetUSD = 1e-6 // breached by the very first execution
	events := runTelemetryPipeline(t, reg)
	var violations []obs.Event
	for _, e := range events {
		if e.Type == obs.EventSLOViolation {
			violations = append(violations, e)
		}
	}
	if len(violations) == 0 {
		t.Fatal("tiny tuning budget produced no slo_violation events")
	}
	if !strings.Contains(violations[0].Detail, "exceeds budget") {
		t.Errorf("violation detail = %q", violations[0].Detail)
	}
	// Dedupe: identical violation text must not repeat on every trial.
	seen := map[string]int{}
	for _, v := range violations {
		seen[v.Detail]++
		if seen[v.Detail] > 1 {
			t.Fatalf("violation %q emitted twice", v.Detail)
		}
	}
}

func TestPipelineNoEmitterNoEvents(t *testing.T) {
	svc := testService(t, 7)
	// No emitter on the context: the pipeline must run exactly as before.
	if _, err := svc.TunePipeline(context.Background(), wcReg("acme")); err != nil {
		t.Fatal(err)
	}
}

// parseClusterString resolves "4x nimbus/h1.4xlarge" back to a spec.
func parseClusterString(t *testing.T, c *cloud.Catalog, s string) cloud.ClusterSpec {
	t.Helper()
	i := strings.Index(s, "x ")
	if i < 0 {
		t.Fatalf("unparseable cluster %q", s)
	}
	count, err := strconv.Atoi(s[:i])
	if err != nil {
		t.Fatalf("unparseable cluster count in %q: %v", s, err)
	}
	inst, err := c.Lookup(s[i+2:])
	if err != nil {
		t.Fatalf("unknown instance in cluster %q: %v", s, err)
	}
	return cloud.ClusterSpec{Instance: inst, Count: count}
}
