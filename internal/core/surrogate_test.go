package core

import (
	"context"
	"strings"
	"testing"

	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/workload"
)

func TestWithSurrogateValidation(t *testing.T) {
	for _, kind := range surrogate.Names() {
		svc, err := NewService(WithSurrogate(kind))
		if err != nil {
			t.Fatalf("WithSurrogate(%q): %v", kind, err)
		}
		if got := svc.Surrogate(); got != kind {
			t.Errorf("Surrogate() = %q, want %q", got, kind)
		}
	}
	if _, err := NewService(WithSurrogate("bogus")); err == nil {
		t.Error("unknown surrogate accepted")
	} else if !strings.Contains(err.Error(), "gp, rffgp, forest") {
		t.Errorf("error %q does not name the accepted list", err)
	}
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Surrogate(); got != surrogate.KindGP {
		t.Errorf("default Surrogate() = %q, want %q", got, surrogate.KindGP)
	}
}

func TestRegistrationSurrogateValidation(t *testing.T) {
	reg := wcReg("t1")
	reg.Surrogate = "forest"
	if err := reg.Validate(); err != nil {
		t.Errorf("forest registration rejected: %v", err)
	}
	reg.Surrogate = "nope"
	if err := reg.Validate(); err == nil {
		t.Error("unknown registration surrogate accepted")
	}
}

// A registration's surrogate choice overrides the service default, and
// the resolved backend surfaces in the pipeline result.
func TestPipelineResolvesAndReportsSurrogate(t *testing.T) {
	svc, err := NewService(
		WithSeed(5),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(6, 10),
		WithNodeRange(2, 6),
		WithSurrogate("rffgp"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.TunePipeline(context.Background(), wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate != "rffgp" {
		t.Errorf("pipeline surrogate = %q, want service default rffgp", res.Surrogate)
	}
	reg := wcReg("t1")
	reg.Surrogate = "forest"
	res, err = svc.TunePipeline(context.Background(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate != "forest" {
		t.Errorf("pipeline surrogate = %q, want registration override forest", res.Surrogate)
	}
}

// Sessions with stochastic surrogates replay exactly: two services with
// the same seed given the same submissions produce identical pipelines.
func TestPipelineDeterministicWithForestSurrogate(t *testing.T) {
	run := func() PipelineResult {
		svc, err := NewService(
			WithSeed(11),
			WithSparkSpace(smallSpace(t)),
			WithBudgets(6, 10),
			WithNodeRange(2, 6),
			WithSurrogate("forest"),
		)
		if err != nil {
			t.Fatal(err)
		}
		reg := Registration{Tenant: "t9", Workload: workload.Sort{}, InputBytes: 2 * gb}
		res, err := svc.TunePipeline(context.Background(), reg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TunedRuntimeS != b.TunedRuntimeS || a.TuningCostUSD != b.TuningCostUSD ||
		a.Cloud.Cluster.String() != b.Cloud.Cluster.String() {
		t.Errorf("forest-surrogate pipelines diverged:\n  a: %+v\n  b: %+v", a, b)
	}
}
