package core

import (
	"context"
	"reflect"
	"testing"

	"seamlesstune/internal/obs"
)

// runDiagPipeline runs one pipeline on a fresh service with diagnostics
// set as given, returning the result and the published events.
func runDiagPipeline(t *testing.T, seed int64, diagnostics, withEmitter bool) (PipelineResult, []obs.Event) {
	t.Helper()
	opts := []Option{
		WithSeed(seed),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(8, 15),
		WithNodeRange(2, 8),
	}
	if !diagnostics {
		opts = append(opts, WithDiagnostics(false))
	}
	svc, err := NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var log *obs.EventLog
	if withEmitter {
		log = obs.NewEventLog(1 << 12)
		reg := wcReg("acme")
		ctx = obs.NewEmitterContext(ctx,
			obs.Emitter{Log: log, Session: "job-1", Tenant: reg.Tenant, Workload: reg.Workload.Name()})
	}
	res, err := svc.TunePipeline(ctx, wcReg("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if log == nil {
		return res, nil
	}
	return res, log.Snapshot(0)
}

// The central promise of the diagnostics layer: it observes, never
// steers. Pipelines with diagnostics on, off, and without any telemetry
// at all must produce identical results.
func TestDiagnosticsDoNotPerturbPipeline(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		on, _ := runDiagPipeline(t, seed, true, true)
		off, _ := runDiagPipeline(t, seed, false, true)
		bare, _ := runDiagPipeline(t, seed, true, false)
		if !reflect.DeepEqual(on, off) {
			t.Errorf("seed %d: diagnostics on vs off diverged\n on  %+v\n off %+v", seed, on, off)
		}
		if !reflect.DeepEqual(on, bare) {
			t.Errorf("seed %d: telemetry vs bare diverged\n with %+v\n bare %+v", seed, on, bare)
		}
	}
}

func TestDiagnosticsEventsPublished(t *testing.T) {
	_, events := runDiagPipeline(t, 7, true, true)
	var decides, healths int
	phases := map[string]bool{}
	for _, e := range events {
		switch e.Type {
		case obs.EventDecide:
			decides++
			phases[e.Phase] = true
			if e.Surrogate == "" || e.Candidates == 0 || e.Rank != 1 {
				t.Errorf("decide event missing provenance: %+v", e)
			}
			if e.EI < 0 || e.Trial == 0 {
				t.Errorf("decide event malformed: %+v", e)
			}
			if e.TopK == "" {
				t.Errorf("decide event without topK: %+v", e)
			}
		case obs.EventModelHealth:
			healths++
			if e.Severity == "" || e.Scores == 0 {
				t.Errorf("model_health event malformed: %+v", e)
			}
		case obs.EventStall:
			if e.Severity == "" || e.Detail == "" {
				t.Errorf("stall event malformed: %+v", e)
			}
		}
	}
	if decides == 0 {
		t.Fatal("no decide events over a full pipeline")
	}
	if !phases["cloud"] || !phases["disc"] {
		t.Errorf("decide events cover phases %v, want both cloud and disc", phases)
	}
	if healths == 0 {
		t.Fatal("no model_health events over a full pipeline")
	}
}

func TestDiagnosticsDisabledSilencesEvents(t *testing.T) {
	_, events := runDiagPipeline(t, 7, false, true)
	if len(events) == 0 {
		t.Fatal("no events at all — trial telemetry should survive WithDiagnostics(false)")
	}
	for _, e := range events {
		switch e.Type {
		case obs.EventDecide, obs.EventModelHealth, obs.EventStall:
			t.Fatalf("diagnostics event leaked with diagnostics off: %+v", e)
		}
	}
}

// Decide events must interleave correctly with trials: each decide
// carries the trial number of the proposal it explains, and arrives
// before that trial's completion event.
func TestDecideEventsPrecedeTheirTrials(t *testing.T) {
	_, events := runDiagPipeline(t, 5, true, true)
	completed := map[string]int{} // phase → highest completed trial
	for _, e := range events {
		switch e.Type {
		case obs.EventDecide:
			if e.Trial <= completed[e.Phase] {
				t.Fatalf("decide for %s trial %d arrived after %d trials completed", e.Phase, e.Trial, completed[e.Phase])
			}
		case obs.EventTrial:
			if e.Phase != "" && e.Trial > completed[e.Phase] {
				completed[e.Phase] = e.Trial
			}
		}
	}
}
