package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/diagnose"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/tuner"
)

// sessionTelemetry turns one tuning session's raw progress into the
// structured event stream of internal/obs: per-trial events carrying
// objective/best-so-far/regret, dollar accounting for every budgeted
// execution (trials, probes, the baseline), and live SLO evaluation
// with deduplicated slo_violation events. It is created per session from
// the context's emitter; a nil *sessionTelemetry is a valid no-op, so
// untelemetered sessions (no emitter on the context) pay nothing but a
// nil check.
type sessionTelemetry struct {
	em          obs.Emitter
	lo          slo.LiveObjective
	totalExecs  int
	diagnostics bool

	mu          sync.Mutex
	execs       int     // spend-bearing executions (trials + probes + baseline)
	trials      int     // session-wide trial counter (1-based in events)
	spend       float64 // cumulative tuning spend, Σ Result.CostUSD
	best        float64 // best successful penalized objective
	bestRuntime float64
	bestCost    float64
	hasBest     bool
	lastCluster string // cluster of the most recent execution
	hasExec     bool   // an execution landed since the last trial event
	lastViolate string // last emitted violation text, for dedupe
	activeDims  int    // pruned search dimension (0 = full space / no pruning)
	totalDims   int
	// diags holds one diagnose.Monitor per phase with diagnostics
	// attached ("cloud", "disc"); trial hooks score the phase's monitor
	// and relay its model_health/stall verdicts onto the stream.
	diags map[string]*diagnose.Monitor
}

// newSessionTelemetry binds an emitter to a session. totalExecs is the
// session's full execution budget — the denominator of spend projection.
// diagnostics opts the session into tuner explainability (decide /
// model_health / stall events; see attachDiagnostics). Returns nil (the
// no-op) when the emitter is disabled.
func newSessionTelemetry(em obs.Emitter, reg Registration, totalExecs int, diagnostics bool) *sessionTelemetry {
	if !em.Enabled() {
		return nil
	}
	return &sessionTelemetry{
		em:          em,
		lo:          slo.LiveObjective{Objective: reg.Objective, TuningBudgetUSD: reg.TuningBudgetUSD},
		totalExecs:  totalExecs,
		diagnostics: diagnostics,
		best:        math.Inf(1),
	}
}

// attachDiagnostics installs the tuner introspection layer on one
// stage's tuner: every EI-guided proposal becomes a decide event, and a
// diagnose.Monitor scores the surrogate's predictions as trials land,
// emitting model_health and stall events from the trial hook. The hook
// only reads the record the tuner already assembled and never touches
// the session RNG, so trajectories are bit-identical with diagnostics
// on or off. No-op for the nil telemetry, for sessions with diagnostics
// disabled, and for tuners that cannot explain themselves.
func (st *sessionTelemetry) attachDiagnostics(tn tuner.Tuner, phase string) {
	if st == nil || !st.diagnostics {
		return
	}
	dr, ok := tn.(tuner.DecisionRecorder)
	if !ok {
		return
	}
	mon := diagnose.New(diagnose.Config{})
	st.mu.Lock()
	if st.diags == nil {
		st.diags = make(map[string]*diagnose.Monitor)
	}
	st.diags[phase] = mon
	st.mu.Unlock()
	dr.SetDecisionHook(func(rec tuner.DecisionRecord) {
		mon.OnDecision(rec.Chosen.Mean, rec.Chosen.Std, rec.Chosen.EI)
		st.mu.Lock()
		trial := st.trials + 1 // the proposal being decided is the next trial
		st.mu.Unlock()
		st.em.Emit(obs.Event{
			Type: obs.EventDecide, Phase: phase, Trial: trial,
			Surrogate:  rec.Surrogate,
			Candidates: rec.Candidates,
			Rank:       rec.Chosen.Rank,
			PredMean:   rec.Chosen.Mean,
			PredStd:    rec.Chosen.Std,
			EI:         rec.Chosen.EI,
			EIExploit:  rec.Chosen.Exploit,
			EIExplore:  rec.Chosen.Explore,
			TopK:       rec.TopKString(),
		})
	})
}

// monitorFor returns the phase's diagnostics monitor (nil when none is
// attached).
func (st *sessionTelemetry) monitorFor(phase string) *diagnose.Monitor {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.diags[phase]
}

func (st *sessionTelemetry) sessionStart() {
	if st == nil {
		return
	}
	st.em.Emit(obs.Event{Type: obs.EventSessionStart, BudgetTrials: st.totalExecs})
}

func (st *sessionTelemetry) sessionEnd(detail string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	ev := obs.Event{Type: obs.EventSessionEnd, Detail: detail, SpendUSD: st.spend}
	if st.hasBest {
		ev.BestSoFar = st.best
		ev.Attainment = st.lo.Attainment(st.bestRuntime, st.bestCost, 0)
	}
	st.mu.Unlock()
	st.em.Emit(ev)
}

// recordExecution accounts one budgeted run. Probe and baseline runs get
// their own execution event; trial runs ("cloud"/"disc" phases) are
// accounted here but reported by the trial hook, which fires right after
// with the tuner's view of the same run.
func (st *sessionTelemetry) recordExecution(phase string, cluster cloud.ClusterSpec, res spark.Result) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.execs++
	st.spend += res.CostUSD
	st.lastCluster = cluster.String()
	st.hasExec = true
	var events []obs.Event
	if phase != "cloud" && phase != "disc" {
		events = append(events, obs.Event{
			Type: obs.EventExecution, Phase: phase,
			Cluster: st.lastCluster, RuntimeS: res.RuntimeS, Failed: res.Failed,
			CostUSD: res.CostUSD, SpendUSD: st.spend,
		})
	}
	if vio := st.checkSLOLocked(); vio != nil {
		events = append(events, *vio)
	}
	st.mu.Unlock()
	for _, ev := range events {
		st.em.Emit(ev)
	}
}

// trialHook returns the tuner.TrialHook that reports one stage's trials,
// or nil for the no-op telemetry.
func (st *sessionTelemetry) trialHook(phase string) tuner.TrialHook {
	if st == nil {
		return nil
	}
	return func(tr tuner.Trial, _ float64) {
		st.mu.Lock()
		mon := st.diags[phase]
		st.trials++
		cluster := ""
		if st.hasExec {
			// The execution recorded since the last trial is this trial's
			// run; a trial with no execution behind it (e.g. an unmappable
			// cloud candidate) has no cluster and no cost.
			cluster = st.lastCluster
			st.hasExec = false
		}
		if !tr.Failed && (!st.hasBest || tr.Objective < st.best) {
			st.best = tr.Objective
			st.bestRuntime = tr.Runtime
			st.bestCost = tr.Cost
			st.hasBest = true
		}
		ev := obs.Event{
			Type: obs.EventTrial, Phase: phase, Trial: st.trials,
			Cluster: cluster, RuntimeS: tr.Runtime, Failed: tr.Failed,
			Objective: tr.Objective, CostUSD: tr.Cost, SpendUSD: st.spend,
		}
		if st.hasBest {
			ev.BestSoFar = st.best
			ev.RegretS = tr.Objective - st.best
			ev.Attainment = st.lo.Attainment(st.bestRuntime, st.bestCost, 0)
			slo.RecordAttainment(ev.Attainment)
		}
		p := st.progressLocked()
		ev.BurnRate = p.BurnRate()
		ev.ProjectedSpendUSD = p.ProjectedSpend(st.totalExecs)
		if st.activeDims > 0 {
			ev.ActiveDims = st.activeDims
			ev.TotalDims = st.totalDims
		}
		vio := st.checkSLOLocked()
		trialNo := st.trials
		st.mu.Unlock()
		st.em.Emit(ev)
		if vio != nil {
			st.em.Emit(*vio)
		}
		if mon == nil {
			return
		}
		// Score the surrogate's pending prediction against this outcome
		// (in the model-target space the posterior works in) and relay
		// any due diagnostics verdicts.
		health, stall := mon.OnTrial(tuner.ModelTarget(tr.Objective), tr.Failed)
		if health != nil {
			st.em.Emit(obs.Event{
				Type: obs.EventModelHealth, Phase: phase, Trial: trialNo,
				Scores:    health.Scores,
				Coverage1: health.Coverage1,
				Coverage2: health.Coverage2,
				RMSE:      health.RMSE,
				NLPD:      health.NLPD,
				Severity:  string(health.Severity),
				Detail:    health.Reason,
			})
		}
		if stall != nil {
			st.em.Emit(obs.Event{
				Type: obs.EventStall, Phase: phase, Trial: trialNo,
				Plateau:  stall.Plateau,
				EI:       stall.EIMax,
				EIPeak:   stall.EIPeak,
				EIDecay:  stall.EIDecay,
				Severity: string(stall.Severity),
				Detail:   stall.Reason,
			})
		}
	}
}

// pruneHook returns the sensitivity-analysis observer for a pruning
// session: every analysis round becomes a prune event carrying the
// active dimension, the dropped knobs, and the leading importances, and
// subsequent trial events are stamped with the active dimension. names
// is the full space's knob order (matching Decision.Importance). Returns
// nil for the no-op telemetry.
func (st *sessionTelemetry) pruneHook(phase string, names []string) func(int, sensitivity.Decision) {
	if st == nil {
		return nil
	}
	return func(trial int, dec sensitivity.Decision) {
		active := len(names)
		if dec.Active != nil {
			active = len(dec.Active)
		}
		st.mu.Lock()
		st.activeDims = active
		st.totalDims = len(names)
		st.mu.Unlock()
		st.em.Emit(obs.Event{
			Type: obs.EventPrune, Phase: phase, Trial: trial,
			ActiveDims: active, TotalDims: len(names),
			Dropped:    strings.Join(dec.Dropped, ","),
			Importance: topImportances(names, dec.Importance, 8),
			Detail:     dec.Reason,
		})
	}
}

// topImportances renders the k largest knob importances as "name=share"
// pairs, comma-separated, largest first (declaration order breaks ties).
func topImportances(names []string, imp []float64, k int) string {
	type kv struct {
		name string
		v    float64
	}
	ranked := make([]kv, 0, len(imp))
	for i, v := range imp {
		if i < len(names) && v > 0 {
			ranked = append(ranked, kv{names[i], v})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	var b strings.Builder
	for i, r := range ranked {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%.3f", r.name, r.v)
	}
	return b.String()
}

func (st *sessionTelemetry) progressLocked() slo.Progress {
	return slo.Progress{
		Trials:       st.execs,
		SpendUSD:     st.spend,
		BestRuntimeS: st.bestRuntime,
		BestCostUSD:  st.bestCost,
		HasIncumbent: st.hasBest,
	}
}

// checkSLOLocked evaluates the live contract and returns an
// slo_violation event when the violation set changed since the last one
// emitted (repeating the same breach every trial would drown the
// stream).
func (st *sessionTelemetry) checkSLOLocked() *obs.Event {
	p := st.progressLocked()
	v := st.lo.LiveViolations(p, st.totalExecs)
	// Every evaluation feeds the burn-rate counters — before the event
	// dedupe, so the alert engine sees the true violation ratio, not the
	// rate of *changes* to the violation set.
	slo.RecordCheck(len(v) > 0)
	if len(v) == 0 {
		return nil
	}
	detail := strings.Join(v, "; ")
	if detail == st.lastViolate {
		return nil
	}
	st.lastViolate = detail
	ev := obs.Event{
		Type: obs.EventSLOViolation, Detail: detail,
		SpendUSD: p.SpendUSD, BurnRate: p.BurnRate(),
		ProjectedSpendUSD: p.ProjectedSpend(st.totalExecs),
	}
	if st.hasBest {
		ev.Attainment = st.lo.Attainment(st.bestRuntime, st.bestCost, 0)
	}
	return &ev
}
