package core_test

import (
	"context"
	"fmt"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/workload"
)

// Example registers a workload with the seamless tuning service and runs
// the two-stage pipeline of Fig. 1 — the tenant provides only the
// workload, an input size and an objective.
func Example() {
	svc, err := core.NewService(
		core.WithSeed(42),
		core.WithSparkSpace(confspace.SparkSubspace(10)),
		core.WithBudgets(6, 10), // provider-side execution budgets
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	reg := core.Registration{
		Tenant:     "example-tenant",
		Workload:   workload.Wordcount{},
		InputBytes: 2 << 30,
		Objective:  slo.Objective{WithinPctOfOptimal: 0.25},
	}
	res, err := svc.TunePipeline(context.Background(), reg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cluster chosen: %v\n", res.Cloud.Cluster.Count > 0)
	fmt.Printf("tuned no worse than scaled defaults: %v\n",
		res.TunedRuntimeS <= res.DefaultRuntimeS*1.05)
	fmt.Printf("every execution recorded provider-side: %v\n", svc.Store().Len() > 15)
	// Output:
	// cluster chosen: true
	// tuned no worse than scaled defaults: true
	// every execution recorded provider-side: true
}
