package core

import (
	"context"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/workload"
)

const gb = int64(1) << 30

// smallSpace keeps integration tests fast: 12 influential Spark knobs.
func smallSpace(t testing.TB) *confspace.Space {
	t.Helper()
	return confspace.SparkSubspace(12)
}

func testService(t testing.TB, seed int64) *Service {
	t.Helper()
	svc, err := NewService(
		WithSeed(seed),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(8, 15),
		WithNodeRange(2, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func wcReg(tenant string) Registration {
	return Registration{
		Tenant:     tenant,
		Workload:   workload.Wordcount{},
		InputBytes: 4 * gb,
		Objective:  slo.Objective{WithinPctOfOptimal: 0.25},
	}
}

func TestRegistrationValidate(t *testing.T) {
	tests := []struct {
		name string
		reg  Registration
		ok   bool
	}{
		{"valid", wcReg("t1"), true},
		{"no tenant", Registration{Workload: workload.Wordcount{}, InputBytes: 1}, false},
		{"no workload", Registration{Tenant: "t", InputBytes: 1}, false},
		{"no input", Registration{Tenant: "t", Workload: workload.Wordcount{}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.reg.Validate()
			if tt.ok != (err == nil) {
				t.Errorf("Validate = %v", err)
			}
		})
	}
}

func TestTuneCloudPicksValidCluster(t *testing.T) {
	svc := testService(t, 1)
	cc, err := svc.TuneCloud(context.Background(), wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Cluster.Validate(); err != nil {
		t.Fatalf("chosen cluster invalid: %v", err)
	}
	if cc.Cluster.Count < 2 || cc.Cluster.Count > 8 {
		t.Errorf("cluster size %d outside configured range", cc.Cluster.Count)
	}
	if len(cc.Session.Trials) != 8 {
		t.Errorf("cloud trials = %d, want 8", len(cc.Session.Trials))
	}
	// Every execution was recorded provider-side.
	if svc.Store().Len() != 8 {
		t.Errorf("store records = %d, want 8", svc.Store().Len())
	}
}

func TestTuneDISCImprovesOverReference(t *testing.T) {
	svc := testService(t, 2)
	reg := wcReg("t1")
	it, err := svc.catalog.Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	dc, err := svc.TuneDISC(context.Background(), reg, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SparkSpace().Validate(dc.Config); err != nil {
		t.Fatalf("chosen config invalid: %v", err)
	}
	// The probe runs used the reference config; tuned must not be worse
	// than the best probe.
	probes := svc.Store().Query(history.Filter{Tenant: "t1", SucceededOnly: true})
	bestProbe := probes[0].RuntimeS
	for _, p := range probes[:3] {
		if p.RuntimeS < bestProbe {
			bestProbe = p.RuntimeS
		}
	}
	if dc.Session.Best.Runtime > bestProbe*1.05 {
		t.Errorf("tuned %.1fs worse than reference probe %.1fs", dc.Session.Best.Runtime, bestProbe)
	}
}

func TestTunePipelineEndToEnd(t *testing.T) {
	svc := testService(t, 3)
	res, err := svc.TunePipeline(context.Background(), wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TunedRuntimeS <= 0 || res.DefaultRuntimeS <= 0 {
		t.Fatalf("degenerate pipeline result: %+v", res)
	}
	if res.TunedRuntimeS > res.DefaultRuntimeS*1.05 {
		t.Errorf("tuned %.1fs worse than scaled defaults %.1fs", res.TunedRuntimeS, res.DefaultRuntimeS)
	}
	if res.TuningCostUSD <= 0 {
		t.Error("tuning cost not accounted")
	}
	if res.Improvement() < 0 {
		t.Errorf("improvement = %v", res.Improvement())
	}
}

func TestWarmStartFromSimilarTenant(t *testing.T) {
	svc := testService(t, 4)
	it, _ := svc.catalog.Lookup("nimbus/g5.2xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}

	// Tenant A tunes wordcount from scratch.
	if _, err := svc.TuneDISC(context.Background(), wcReg("tenantA"), cluster); err != nil {
		t.Fatal(err)
	}
	// Tenant B submits the same workload type: the service should
	// fingerprint it as similar and warm-start from tenant A's history.
	dc, err := svc.TuneDISC(context.Background(), wcReg("tenantB"), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if !dc.WarmStarted {
		t.Fatal("second tenant not warm-started from similar history")
	}
	if dc.Source.Tenant != "tenantA" {
		t.Errorf("source = %+v, want tenantA", dc.Source)
	}
	if dc.Similarity < 0.5 {
		t.Errorf("similarity = %v", dc.Similarity)
	}
}

func TestNegativeTransferGuard(t *testing.T) {
	svc := testService(t, 5)
	it, _ := svc.catalog.Lookup("nimbus/h1.4xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}

	// Only a very different workload (iterative pagerank) in the store.
	prReg := Registration{Tenant: "tenantA", Workload: workload.PageRank{}, InputBytes: 8 * gb}
	if _, err := svc.TuneDISC(context.Background(), prReg, cluster); err != nil {
		t.Fatal(err)
	}
	dc, err := svc.TuneDISC(context.Background(), wcReg("tenantB"), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if dc.WarmStarted {
		t.Errorf("warm-started from dissimilar source %v (similarity %v)", dc.Source, dc.Similarity)
	}
}

func TestEffectivenessReport(t *testing.T) {
	svc := testService(t, 6)
	it, _ := svc.catalog.Lookup("nimbus/g5.2xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	if _, err := svc.TuneDISC(context.Background(), wcReg("t1"), cluster); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Effectiveness("t1", "wordcount")
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestOwn <= 0 || rep.BestKnown <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	// t1 is the only tenant, so its best is the best known.
	if rep.Effectiveness != 0 {
		t.Errorf("effectiveness = %v, want 0", rep.Effectiveness)
	}
	if _, err := svc.Effectiveness("ghost", "wordcount"); err == nil {
		t.Error("report for unknown tenant succeeded")
	}
}

func TestBestKnownSecondsPerGB(t *testing.T) {
	svc := testService(t, 7)
	if _, ok := svc.BestKnownSecondsPerGB("wordcount"); ok {
		t.Error("best known on empty store")
	}
}

func TestServiceOptions(t *testing.T) {
	// WithStore threads an existing (e.g. restored) history through.
	pre := &history.Store{}
	pre.Append(history.Record{Tenant: "old", Workload: "wordcount", InputBytes: gb, RuntimeS: 50})
	svc, err := NewService(
		WithStore(pre),
		WithCatalog(cloud.DefaultCatalog()),
		WithInterference(cloud.InterferenceLow),
		WithSeed(9),
	)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Store().Len() != 1 {
		t.Errorf("store not adopted: len = %d", svc.Store().Len())
	}
	if _, ok := svc.BestKnownSecondsPerGB("wordcount"); !ok {
		t.Error("restored history not visible to BestKnown")
	}
	// A nil store is ignored, not adopted.
	svc2, err := NewService(WithStore(nil))
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Store() == nil {
		t.Error("nil store adopted")
	}
}

func TestNewServiceRejectsBadOptions(t *testing.T) {
	tests := []struct {
		name string
		opts []Option
	}{
		{"inverted node range", []Option{WithNodeRange(8, 2)}},
		{"zero min nodes", []Option{WithNodeRange(0, 4)}},
		{"zero cloud budget", []Option{WithBudgets(0, 10)}},
		{"negative disc budget", []Option{WithBudgets(10, -1)}},
		{"nil catalog", []Option{WithCatalog(nil)}},
		{"nil spark space", []Option{WithSparkSpace(nil)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewService(tt.opts...); err == nil {
				t.Error("bad options accepted")
			}
		})
	}
	// The defaults are valid.
	if _, err := NewService(); err != nil {
		t.Errorf("default construction failed: %v", err)
	}
}

func TestTuneDISCUnderInterference(t *testing.T) {
	svc, err := NewService(
		WithSeed(10),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(6, 12),
		WithInterference(cloud.InterferenceMedium),
	)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := svc.catalog.Lookup("nimbus/g5.2xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	dc, err := svc.TuneDISC(context.Background(), wcReg("t1"), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Session.Best.Runtime <= 0 {
		t.Error("no best under interference")
	}
}

func TestTuneCloudValidatesRegistration(t *testing.T) {
	svc := testService(t, 11)
	if _, err := svc.TuneCloud(context.Background(), Registration{}); err == nil {
		t.Error("empty registration accepted")
	}
	if _, err := svc.TuneDISC(context.Background(), Registration{}, cloud.ClusterSpec{}); err == nil {
		t.Error("empty registration accepted by TuneDISC")
	}
	reg := wcReg("t")
	if _, err := svc.TuneDISC(context.Background(), reg, cloud.ClusterSpec{}); err == nil {
		t.Error("invalid cluster accepted by TuneDISC")
	}
}
