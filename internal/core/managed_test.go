package core

import (
	"context"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/retune"
	"seamlesstune/internal/workload"
)

// tunedManaged sets up a tuned, managed wordcount for the tests.
func tunedManaged(t *testing.T, seed int64, opts ...ManagedOption) (*Service, *Managed) {
	t.Helper()
	svc := testService(t, seed)
	it, err := svc.catalog.Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	reg := wcReg("t1")
	dc, err := svc.TuneDISC(context.Background(), reg, cluster)
	if err != nil {
		t.Fatal(err)
	}
	return svc, svc.Manage(reg, cluster, dc.Config, opts...)
}

func TestManagedStableWorkloadNeverRetunes(t *testing.T) {
	_, m := tunedManaged(t, 10)
	for i := 0; i < 25; i++ {
		rep := m.RunOnce()
		if rep.Retuned {
			t.Fatalf("spurious re-tune at run %d", i)
		}
		if rep.Record.Failed {
			t.Fatalf("production run %d failed: %s", i, rep.Record.Reason)
		}
	}
	if m.Retunes() != 0 {
		t.Errorf("retunes = %d, want 0", m.Retunes())
	}
	if m.Runs() != 25 {
		t.Errorf("runs = %d, want 25", m.Runs())
	}
}

func TestManagedDetectsInputGrowthAndRetunes(t *testing.T) {
	_, m := tunedManaged(t, 11, WithRetuneBudget(10))
	// Establish a baseline.
	for i := 0; i < 15; i++ {
		m.RunOnce()
	}
	// The dataset quadruples (a Table-I style evolution).
	m.SetInput(16 * gb)
	triggered := false
	for i := 0; i < 20 && !triggered; i++ {
		rep := m.RunOnce()
		if rep.RetuneTriggered {
			triggered = true
		}
	}
	if !triggered {
		t.Fatal("detector never fired after 4x input growth")
	}
}

func TestManagedRetuneAdoptsNewConfig(t *testing.T) {
	_, m := tunedManaged(t, 12, WithRetuneBudget(10))
	before := m.Config()
	for i := 0; i < 15; i++ {
		m.RunOnce()
	}
	m.SetInput(16 * gb)
	var adopted bool
	for i := 0; i < 25; i++ {
		rep := m.RunOnce()
		if rep.Retuned {
			adopted = true
			if rep.NewConfig == nil {
				t.Fatal("retuned without a new config")
			}
			break
		}
	}
	if !adopted {
		t.Skip("detector fired but retune session found nothing better; acceptable for this seed")
	}
	_ = before
	if m.Retunes() != 1 {
		t.Errorf("retunes = %d, want 1", m.Retunes())
	}
}

func TestManagedCustomDetector(t *testing.T) {
	// A hair-trigger fixed threshold fires quickly under noise — the
	// §V-D failure mode, visible through the service API.
	_, m := tunedManaged(t, 13, WithDetector(retune.NewFixedThreshold(0.01, 2)), WithRetuneBudget(5))
	fired := false
	for i := 0; i < 20 && !fired; i++ {
		fired = m.RunOnce().RetuneTriggered
	}
	if !fired {
		t.Error("1% fixed threshold never fired in 20 noisy runs")
	}
}

func TestManagedInterferenceShiftTriggers(t *testing.T) {
	_, m := tunedManaged(t, 14, WithRetuneBudget(8))
	for i := 0; i < 15; i++ {
		m.RunOnce()
	}
	m.SetInterference(cloud.InterferenceHigh)
	triggered := false
	for i := 0; i < 25 && !triggered; i++ {
		triggered = m.RunOnce().RetuneTriggered
	}
	if !triggered {
		t.Error("detector never fired after interference jumped to high")
	}
}

func TestManagedConfigIsCopied(t *testing.T) {
	svc := testService(t, 15)
	it, _ := svc.catalog.Lookup("nimbus/g5.2xlarge")
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	cfg := svc.SparkSpace().Default()
	m := svc.Manage(Registration{Tenant: "t", Workload: workload.Wordcount{}, InputBytes: gb}, cluster, cfg)
	got := m.Config()
	got["spark.executor.cores"] = 99
	if m.Config()["spark.executor.cores"] == 99 {
		t.Error("Config aliases internal state")
	}
}

func TestManagedElasticRetuneGrowsCluster(t *testing.T) {
	svc := testService(t, 16)
	it, err := svc.catalog.Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately small cluster for a growing workload.
	cluster := cloud.ClusterSpec{Instance: it, Count: 2}
	reg := Registration{Tenant: "t1", Workload: workload.Sort{}, InputBytes: 2 * gb}
	dc, err := svc.TuneDISC(context.Background(), reg, cluster)
	if err != nil {
		t.Fatal(err)
	}
	m := svc.Manage(reg, cluster, dc.Config, WithRetuneBudget(8), WithElasticRetune())
	for i := 0; i < 12; i++ {
		m.RunOnce()
	}
	// The dataset grows 8x: the detector should fire and the elastic
	// retune should consider (and likely adopt) a bigger cluster.
	m.SetInput(16 * gb)
	for i := 0; i < 25 && m.Retunes() == 0; i++ {
		m.RunOnce()
	}
	if m.Retunes() == 0 {
		t.Fatal("no retune after 8x input growth")
	}
	if m.Resizes() == 0 {
		t.Skip("retuned without resizing; acceptable when DISC tuning suffices")
	}
	if m.Cluster().Count <= 2 {
		t.Errorf("resize adopted a cluster of %d nodes, want growth", m.Cluster().Count)
	}
}
