package core

import (
	"errors"
	"testing"
	"time"

	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/storage"
)

// failingBackend accepts recovery but fails every record append — the
// sticky-error shape of a full disk or a failed WAL segment.
type failingBackend struct {
	err error
}

func (f failingBackend) Name() string                                { return "failing" }
func (f failingBackend) Recover(*history.Store) ([]obs.Event, error) { return nil, nil }
func (f failingBackend) AppendRecord(history.Record) error           { return f.err }
func (f failingBackend) AppendEvent(obs.Event) error                 { return nil }
func (f failingBackend) FlushEvents([]obs.Event) error               { return nil }
func (f failingBackend) AppendTelemetry([]byte) error                { return nil }
func (f failingBackend) RecoveredTelemetry() [][]byte                { return nil }
func (f failingBackend) SetTelemetrySource(func() [][]byte)          {}
func (f failingBackend) Saturated() (bool, time.Duration)            { return false, 0 }
func (f failingBackend) Compact() error                              { return nil }
func (f failingBackend) Stats() storage.Stats                        { return storage.Stats{Backend: "failing"} }
func (f failingBackend) Close() error                                { return nil }

// TestPersistHealthSurfacesAppendFailures: the persist hook must not
// swallow backend errors — a record that completed in memory but never
// became durable has to show up in PersistHealth (and from there in
// /healthz as a degraded status).
func TestPersistHealthSurfacesAppendFailures(t *testing.T) {
	sticky := errors.New("disk full")
	svc, err := NewService(WithStorage(failingBackend{err: sticky}))
	if err != nil {
		t.Fatal(err)
	}
	if n, last := svc.PersistHealth(); n != 0 || last != nil {
		t.Fatalf("fresh service PersistHealth = (%d, %v), want (0, nil)", n, last)
	}
	for i := 0; i < 3; i++ {
		svc.Store().Append(history.Record{Tenant: "acme", Workload: "wordcount"})
	}
	n, last := svc.PersistHealth()
	if n != 3 {
		t.Errorf("PersistHealth failures = %d, want 3", n)
	}
	if !errors.Is(last, sticky) {
		t.Errorf("PersistHealth last = %v, want %v", last, sticky)
	}
}

// TestPersistHealthHealthyPath: successful appends leave the signal
// clean.
func TestPersistHealthHealthyPath(t *testing.T) {
	svc, err := NewService(WithStorage(failingBackend{err: nil}))
	if err != nil {
		t.Fatal(err)
	}
	svc.Store().Append(history.Record{Tenant: "acme", Workload: "wordcount"})
	if n, last := svc.PersistHealth(); n != 0 || last != nil {
		t.Errorf("PersistHealth = (%d, %v), want (0, nil)", n, last)
	}
}
