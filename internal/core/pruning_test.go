package core

import (
	"context"
	"testing"

	"seamlesstune/internal/obs"
)

func TestWithPruningResolution(t *testing.T) {
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	if svc.Pruning() {
		t.Error("pruning enabled by default")
	}
	if svc.resolvePruning(wcReg("t1")) {
		t.Error("plain registration prunes on a default service")
	}
	reg := wcReg("t1")
	reg.Pruning = true
	if !svc.resolvePruning(reg) {
		t.Error("registration opt-in ignored")
	}
	svc, err = NewService(WithPruning(true))
	if err != nil {
		t.Fatal(err)
	}
	if !svc.Pruning() || !svc.resolvePruning(wcReg("t1")) {
		t.Error("WithPruning(true) not honored")
	}
}

// The analyzer's default warmup is max(2·dim, 20) samples; with a DISC
// budget below that, a pruning session never adopts a subspace, and its
// trajectory must be bit-identical to the plain BayesOpt session —
// trial for trial, config for config. This pins the wrapper's
// no-divergence contract at the service layer.
func TestPipelinePruningDormantMatchesPlain(t *testing.T) {
	run := func(pruning bool) PipelineResult {
		opts := []Option{
			WithSeed(5),
			WithSparkSpace(smallSpace(t)),
			WithBudgets(6, 10),
			WithNodeRange(2, 6),
		}
		if pruning {
			opts = append(opts, WithPruning(true))
		}
		svc, err := NewService(opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.TunePipeline(context.Background(), wcReg("t1"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, pruned := run(false), run(true)
	if plain.Pruning || !pruned.Pruning {
		t.Fatalf("Pruning flags = %v/%v, want false/true", plain.Pruning, pruned.Pruning)
	}
	if !pruned.DISC.Pruned {
		t.Error("pruning session did not report DISC.Pruned")
	}
	if pruned.DISC.ActiveDims != pruned.DISC.TotalDims {
		t.Errorf("dormant analyzer shrank the space: %d/%d dims",
			pruned.DISC.ActiveDims, pruned.DISC.TotalDims)
	}
	if len(pruned.DISC.PrunedKnobs) != 0 {
		t.Errorf("dormant analyzer pinned knobs: %v", pruned.DISC.PrunedKnobs)
	}
	if plain.TunedRuntimeS != pruned.TunedRuntimeS || plain.TuningCostUSD != pruned.TuningCostUSD {
		t.Errorf("trajectories diverged: plain %.6f/$%.6f, pruned %.6f/$%.6f",
			plain.TunedRuntimeS, plain.TuningCostUSD, pruned.TunedRuntimeS, pruned.TuningCostUSD)
	}
	a, b := plain.DISC.Session.Trials, pruned.DISC.Session.Trials
	if len(a) != len(b) {
		t.Fatalf("trial counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Runtime != b[i].Runtime || a[i].Config.Canonical() != b[i].Config.Canonical() {
			t.Fatalf("trial %d diverged:\n  plain:  %s (%.3fs)\n  pruned: %s (%.3fs)",
				i, a[i].Config.Canonical(), a[i].Runtime, b[i].Config.Canonical(), b[i].Runtime)
		}
	}
}

// A pruning session with budget past the analyzer warmup publishes
// prune telemetry, and once a subspace is adopted the later trial
// events carry the active-dimension count.
func TestPipelinePruningEmitsPruneEvents(t *testing.T) {
	svc, err := NewService(
		WithSeed(9),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(6, 60),
		WithNodeRange(2, 6),
		WithPruning(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewEventLog(1 << 12)
	ctx := obs.NewEmitterContext(context.Background(),
		obs.Emitter{Log: log, Session: "job-p", Tenant: "t1", Workload: "wordcount"})
	res, err := svc.TunePipeline(ctx, wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pruning || !res.DISC.Pruned {
		t.Fatalf("pruning not reported: Pruning=%v DISC.Pruned=%v", res.Pruning, res.DISC.Pruned)
	}
	total := smallSpace(t).Dim()
	if res.DISC.TotalDims != total {
		t.Errorf("TotalDims = %d, want %d", res.DISC.TotalDims, total)
	}
	var prunes []obs.Event
	for _, e := range log.Snapshot(0) {
		if e.Type == obs.EventPrune {
			prunes = append(prunes, e)
		}
	}
	if len(prunes) == 0 {
		t.Fatal("no prune events with a 60-trial budget (warmup is 24 samples)")
	}
	reasons := map[string]bool{"warmup": true, "unstable": true, "converged": true, "resurgence": true, "steady": true}
	for _, e := range prunes {
		if e.Phase != "disc" {
			t.Errorf("prune event phase = %q, want disc", e.Phase)
		}
		if e.ActiveDims < 1 || e.ActiveDims > total || e.TotalDims != total {
			t.Errorf("prune event dims %d/%d out of range", e.ActiveDims, e.TotalDims)
		}
		if !reasons[e.Detail] {
			t.Errorf("prune event detail = %q, not an analyzer reason", e.Detail)
		}
		if e.Importance == "" {
			t.Error("prune event missing importance summary")
		}
	}
	// DISCChoice echoes the final view; if a subspace was adopted, the
	// pinned knobs and the trial-event stamps must agree with it.
	if res.DISC.ActiveDims < total {
		if len(res.DISC.PrunedKnobs) != total-res.DISC.ActiveDims {
			t.Errorf("PrunedKnobs = %v, want %d names", res.DISC.PrunedKnobs, total-res.DISC.ActiveDims)
		}
		var stamped bool
		for _, e := range log.Snapshot(0) {
			if e.Type == obs.EventTrial && e.ActiveDims > 0 {
				stamped = true
				if e.TotalDims != total || e.ActiveDims > total {
					t.Errorf("trial event dims %d/%d inconsistent", e.ActiveDims, e.TotalDims)
				}
			}
		}
		if !stamped {
			t.Error("subspace adopted but no trial event carries ActiveDims")
		}
	}
}
