package core

import (
	"context"
	"math/rand"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/retune"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/tuner"
)

// Managed is a workload in production under the service's care: every
// run's runtime streams through a re-tuning detector, and a detected
// change (input growth, interference shift, ...) triggers a bounded
// re-tuning — automatically, with no tenant involvement (§IV-B, §V-D).
type Managed struct {
	svc     *Service
	reg     Registration
	cluster cloud.ClusterSpec
	current confspace.Config

	detector retune.Detector
	env      *cloud.Environment
	rng      *rand.Rand
	base     int64

	retuneBudget int
	elastic      bool
	runs         int
	retunes      int
	resizes      int
}

// ManagedOption configures Manage.
type ManagedOption func(*Managed)

// WithDetector overrides the re-tuning detector (default adaptive
// Mann-Whitney).
func WithDetector(d retune.Detector) ManagedOption {
	return func(m *Managed) { m.detector = d }
}

// WithRetuneBudget bounds each automatic re-tuning session (default 15
// executions — cheaper than initial tuning because it warm-starts from
// the workload's own history).
func WithRetuneBudget(n int) ManagedOption {
	return func(m *Managed) { m.retuneBudget = n }
}

// WithElasticRetune lets re-tuning also reconsider the cluster size —
// the cloud-elasticity opportunity the paper says static approaches miss
// (§II-A). A re-tuning session first probes the current configuration on
// half-sized and double-sized clusters (2 extra runs) and adopts a
// clearly better size before tuning the DISC configuration.
func WithElasticRetune() ManagedOption {
	return func(m *Managed) { m.elastic = true }
}

// Manage places a tuned workload under continuous management. Each
// managed workload runs on its own derived random stream, so concurrently
// managed workloads never perturb each other.
func (s *Service) Manage(reg Registration, cluster cloud.ClusterSpec, cfg confspace.Config, opts ...ManagedOption) *Managed {
	base := s.sessionSeed("manage", reg)
	m := &Managed{
		svc:          s,
		reg:          reg,
		base:         base,
		cluster:      cluster,
		current:      cfg.Clone(),
		detector:     retune.NewAdaptive(),
		env:          cloud.NewEnvironment(s.interference, stat.DeriveSeed(base, "env")),
		rng:          stat.DeriveRNG(base, "runs"),
		retuneBudget: 15,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// RunReport describes one managed production run.
type RunReport struct {
	Record history.Record
	// RetuneTriggered reports that the detector fired on this run.
	RetuneTriggered bool
	// Retuned reports that a re-tuning session ran (and Record reflects
	// the pre-retune execution).
	Retuned bool
	// NewConfig holds the configuration adopted by re-tuning.
	NewConfig confspace.Config
}

// RunOnce executes the workload once under the current configuration,
// feeds the detector, and re-tunes when it fires.
func (m *Managed) RunOnce() RunReport {
	res, _ := m.svc.execute(context.Background(), m.reg, m.cluster, m.current, m.env.Next(), m.rng, nil, "managed")
	m.runs++
	recs := m.svc.store.Query(history.Filter{
		Tenant: m.reg.Tenant, Workload: m.reg.Workload.Name(), MaxN: 1,
	})
	report := RunReport{}
	if len(recs) > 0 {
		report.Record = recs[0]
	}
	if res.Failed || m.detector.Observe(res.RuntimeS) {
		report.RetuneTriggered = true
		if cfg, ok := m.retune(); ok {
			report.Retuned = true
			report.NewConfig = cfg
			m.current = cfg
			m.detector.Reset()
			m.retunes++
		}
	}
	return report
}

// maybeResize probes the current configuration on half- and double-sized
// clusters and adopts a size that is clearly (>10%) faster. It consumes
// up to two executions.
func (m *Managed) maybeResize() {
	current, _ := m.svc.execute(context.Background(), m.reg, m.cluster, m.current, m.env.Next(), m.rng, nil, "managed")
	if current.Failed {
		return
	}
	bestSpec, bestRT := m.cluster, current.RuntimeS
	for _, count := range []int{m.cluster.Count / 2, m.cluster.Count * 2} {
		if count < 1 || count == m.cluster.Count {
			continue
		}
		spec := m.cluster.Resize(count)
		res, _ := m.svc.execute(context.Background(), m.reg, spec, m.current, m.env.Next(), m.rng, nil, "managed")
		if !res.Failed && res.RuntimeS < bestRT*0.9 {
			bestSpec, bestRT = spec, res.RuntimeS
		}
	}
	if bestSpec.Count != m.cluster.Count {
		m.cluster = bestSpec
		m.resizes++
	}
}

// retune runs a bounded warm-started tuning session on the workload's own
// (recent) history and returns the adopted configuration.
func (m *Managed) retune() (confspace.Config, bool) {
	if m.elastic {
		m.maybeResize()
	}
	bo := m.svc.newBayesOpt(m.svc.sparkSpace, m.reg, m.base)
	// Warm-start from this workload's own recent runs so the session
	// spends its small budget refining, not rediscovering. Older records
	// reflect outdated input sizes/conditions, so only a window is used.
	recs := m.svc.store.Query(history.Filter{
		Tenant: m.reg.Tenant, Workload: m.reg.Workload.Name(), MaxN: 40,
	})
	var warm []tuner.Trial
	for _, r := range recs {
		// Only runs at the current input size on the current cluster are
		// comparable observations.
		if r.Failed || r.InputBytes != m.reg.InputBytes || r.Cluster != m.cluster.String() {
			continue
		}
		warm = append(warm, tuner.Trial{
			Config:      m.svc.sparkSpace.Clamp(r.Config),
			Measurement: tuner.Measurement{Runtime: r.RuntimeS, Cost: r.CostUSD},
			Objective:   r.RuntimeS,
		})
	}
	bo.WarmStart = warm
	bo.InitSamples = 3
	obj := func(cfg confspace.Config) tuner.Measurement {
		_, meas := m.svc.execute(context.Background(), m.reg, m.cluster, cfg, m.env.Next(), m.rng, nil, "managed")
		return meas
	}
	res, err := tuner.Run(bo, obj, m.retuneBudget, m.rng)
	if err != nil || !res.Found {
		return nil, false
	}
	return res.Best.Config, true
}

// SetInput changes the workload's input size, modelling dataset growth —
// the change Table I quantifies. The detector notices the effect on
// runtimes; nothing else is signalled.
func (m *Managed) SetInput(bytes int64) { m.reg.InputBytes = bytes }

// SetInterference changes the co-location level of the tenant's
// environment (something only the provider can see directly).
func (m *Managed) SetInterference(level cloud.InterferenceLevel) { m.env.SetLevel(level) }

// Config returns the configuration currently in production.
func (m *Managed) Config() confspace.Config { return m.current.Clone() }

// Runs returns the number of production executions so far.
func (m *Managed) Runs() int { return m.runs }

// Retunes returns how many automatic re-tunings have occurred.
func (m *Managed) Retunes() int { return m.retunes }

// Resizes returns how many elastic cluster resizes have occurred.
func (m *Managed) Resizes() int { return m.resizes }

// Cluster returns the cluster currently in use (it changes under
// WithElasticRetune).
func (m *Managed) Cluster() cloud.ClusterSpec { return m.cluster }
