package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"seamlesstune/internal/slo"
	"seamlesstune/internal/workload"
)

// concurrencyService disables cross-workload transfer so results cannot
// depend on how concurrently running sessions interleave in the store.
func concurrencyService(t *testing.T) *Service {
	t.Helper()
	svc, err := NewService(
		WithSeed(21),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(5, 8),
		WithTransferThreshold(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func concurrencyRegs() []Registration {
	wls := []workload.Workload{
		workload.Wordcount{}, workload.PageRank{}, workload.KMeans{}, workload.Bayes{},
	}
	var regs []Registration
	for i, wl := range wls {
		regs = append(regs, Registration{
			Tenant:     fmt.Sprintf("tenant-%d", i),
			Workload:   wl,
			InputBytes: 2 * gb,
			Objective:  slo.Objective{WithinPctOfOptimal: 0.25},
		})
	}
	return regs
}

// TestConcurrentPipelinesMatchSequential drives the Service itself (below
// the HTTP/job layer) from many goroutines and checks the per-invocation
// RNG derivation keeps results identical to a sequential run of the same
// submissions. Run with -race.
func TestConcurrentPipelinesMatchSequential(t *testing.T) {
	regs := concurrencyRegs()

	// Sequential reference: each tenant submits twice, in order.
	seqSvc := concurrencyService(t)
	sequential := make(map[string][]PipelineResult)
	for round := 0; round < 2; round++ {
		for _, reg := range regs {
			res, err := seqSvc.TunePipeline(context.Background(), reg)
			if err != nil {
				t.Fatal(err)
			}
			sequential[reg.Tenant] = append(sequential[reg.Tenant], res)
		}
	}

	// Concurrent run: one goroutine per tenant, two submissions each
	// (per-tenant order preserved by the goroutine itself).
	concSvc := concurrencyService(t)
	concurrent := make(map[string][]PipelineResult)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(regs))
	for _, reg := range regs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 2; round++ {
				res, err := concSvc.TunePipeline(context.Background(), reg)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				concurrent[reg.Tenant] = append(concurrent[reg.Tenant], res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, reg := range regs {
		want, got := sequential[reg.Tenant], concurrent[reg.Tenant]
		if len(got) != len(want) {
			t.Fatalf("tenant %s: %d concurrent results vs %d sequential", reg.Tenant, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("tenant %s submission %d: concurrent result differs from sequential\nconcurrent: %+v\nsequential: %+v",
					reg.Tenant, i, got[i], want[i])
			}
		}
	}

	// Both services recorded every execution.
	if concSvc.Store().Len() != seqSvc.Store().Len() {
		t.Errorf("store sizes diverge: concurrent %d vs sequential %d",
			concSvc.Store().Len(), seqSvc.Store().Len())
	}
}

// TestSessionSeedIndependentOfOtherTenants pins the derivation property
// the concurrency design rests on: a tenant's nth submission draws the
// same seed no matter what other tenants have done in between.
func TestSessionSeedIndependentOfOtherTenants(t *testing.T) {
	regs := concurrencyRegs()
	a := concurrencyService(t)
	b := concurrencyService(t)

	// Service a: tenant-0 alone. Service b: tenant-0 interleaved with the
	// other tenants' submissions.
	s0 := a.sessionSeed("pipeline", regs[0])
	for _, reg := range regs[1:] {
		b.sessionSeed("pipeline", reg)
	}
	if got := b.sessionSeed("pipeline", regs[0]); got != s0 {
		t.Errorf("first submission seed changed with interleaving: %d vs %d", got, s0)
	}
	s1 := a.sessionSeed("pipeline", regs[0])
	for _, reg := range regs[1:] {
		b.sessionSeed("pipeline", reg)
	}
	if got := b.sessionSeed("pipeline", regs[0]); got != s1 {
		t.Errorf("second submission seed changed with interleaving: %d vs %d", got, s1)
	}
	if s0 == s1 {
		t.Error("repeated submissions drew the same seed")
	}
}
