package core

import (
	"context"
	"reflect"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/simcache"
)

// cachedService is testService with the evaluation cache enabled.
func cachedService(t testing.TB, seed int64, c *simcache.Cache) *Service {
	t.Helper()
	svc, err := NewService(
		WithSeed(seed),
		WithSparkSpace(smallSpace(t)),
		WithBudgets(8, 15),
		WithNodeRange(2, 8),
		WithSimCache(c),
	)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// Cached-mode sessions must be deterministic and replayable: two
// services with the same seed produce identical pipelines, whether
// their caches are cold, warm, or shared.
func TestSimCacheDeterministicPipelines(t *testing.T) {
	ctx := context.Background()
	a, err := cachedService(t, 11, simcache.New(4096)).TunePipeline(ctx, wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cachedService(t, 11, simcache.New(4096)).TunePipeline(ctx, wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cached pipelines with equal seeds diverged")
	}

	// A shared warm cache must not change the outcome either — hits are
	// bit-identical to the runs they memoize.
	shared := simcache.New(4096)
	warmup, err := cachedService(t, 11, shared).TunePipeline(ctx, wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := cachedService(t, 11, shared).TunePipeline(ctx, wcReg("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmup, replay) {
		t.Fatal("warm-cache replay diverged from cold-cache run")
	}
	if shared.Stats().Hits == 0 {
		t.Fatalf("expected cache hits on replay, got %+v", shared.Stats())
	}
}

// CacheStats must be nil-safe and reflect traffic when enabled.
func TestServiceCacheStats(t *testing.T) {
	plain := testService(t, 1)
	if st := plain.CacheStats(); st != (simcache.Stats{}) {
		t.Fatalf("cache-less service reported stats %+v", st)
	}
	c := simcache.New(1024)
	svc := cachedService(t, 3, c)
	it, err := svc.catalog.Lookup("nimbus/g5.2xlarge")
	if err != nil {
		t.Fatal(err)
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: 4}
	if _, err := svc.TuneDISC(context.Background(), wcReg("t1"), cluster); err != nil {
		t.Fatal(err)
	}
	st := svc.CacheStats()
	if st.Misses == 0 {
		t.Fatalf("expected simulator executions to register as misses, got %+v", st)
	}
	// Probe runs repeat the reference configuration under identical
	// factors (no interference), so a session produces hits on its own.
	if st.Hits == 0 {
		t.Fatalf("expected repeated reference runs to hit, got %+v", st)
	}
}
