// Package core implements the paper's primary contribution: a seamless,
// provider-side configuration-tuning service for big-data analytics.
//
// The service realizes the four principles of §VI on top of the
// simulated substrates:
//
//  1. Tuning with minimal user expertise: a tenant registers a workload
//     and an SLO; the two-stage pipeline of Fig. 1 picks the cloud
//     configuration (stage 1) and the DISC/Spark configuration (stage 2)
//     automatically.
//  2. Resilience to change: managed workloads stream their production
//     runtimes through adaptive re-tuning detectors; input growth or
//     interference shifts trigger bounded re-tuning automatically.
//  3. Bounded, provider-side tuning cost: every tuning execution is
//     accounted in the multi-tenant history store, warm-started from
//     similar tenants' histories (transfer learning, §V-B), and budgeted.
//  4. SLO augmentation: the service reports tuning effectiveness as the
//     gap to the best runtime of similar workloads ever run in the cloud
//     (§IV-D's practical substitute for the unknowable optimum).
package core

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/history"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/simcache"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/storage"
	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/transfer"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// Service is the multi-tenant seamless-tuning service. Construct with
// NewService.
//
// A Service is safe for concurrent use: it holds no mutable tuning state
// beyond the (concurrency-safe) history store and a submission counter.
// Every tuning session derives its own random stream from
// (seed, entry point, tenant, workload, submission #), so sessions are
// race-free, order-independent across tenants, and replayable.
type Service struct {
	catalog    *cloud.Catalog
	store      *history.Store
	sparkSpace *confspace.Space
	seed       int64

	minNodes, maxNodes int
	cloudBudget        int
	discBudget         int
	probeRuns          int
	interference       cloud.InterferenceLevel
	transferThreshold  float64
	simCache           *simcache.Cache
	surrogateKind      string
	pruning            bool
	diagnostics        bool

	// storage, when set, is the durable persistence backend: NewService
	// recovers the store from it and hooks appends into it.
	// recoveredEvents are the telemetry events the backend replayed.
	storage         storage.Backend
	recoveredEvents []obs.Event

	// persistFailures counts history records the persist hook failed to
	// make durable; lastPersistErr (under persistMu) is the most recent
	// failure. Together they are the health signal behind /healthz's
	// degraded status — the in-memory store stays authoritative for the
	// process, but silent non-durability must be visible.
	persistFailures atomic.Int64
	persistMu       sync.Mutex
	lastPersistErr  error

	// subMu guards subs, the per-(kind, tenant, workload) submission
	// counters that make repeated submissions of the same workload draw
	// distinct (but still deterministic) random streams.
	subMu sync.Mutex
	subs  map[string]int
}

// Option configures a Service.
type Option func(*Service)

// WithCatalog sets the instance catalog (default cloud.DefaultCatalog).
func WithCatalog(c *cloud.Catalog) Option { return func(s *Service) { s.catalog = c } }

// WithStore supplies an existing execution-history store — e.g. one
// restored from disk — instead of an empty one.
func WithStore(st *history.Store) Option {
	return func(s *Service) {
		if st != nil {
			s.store = st
		}
	}
}

// WithStorage attaches a persistence backend: NewService recovers the
// history store from it, then hooks the store so every appended record
// is persisted as it lands. The service owns neither the backend's
// lifecycle nor the event stream — close the backend after the service,
// and wire the event sink separately (obs.EventLog.SetSink).
func WithStorage(b storage.Backend) Option {
	return func(s *Service) { s.storage = b }
}

// WithSeed seeds all service randomness (default 1).
func WithSeed(seed int64) Option { return func(s *Service) { s.seed = seed } }

// WithSparkSpace restricts stage-2 tuning to a subspace of the Spark
// parameters (default: the full 41-knob space).
func WithSparkSpace(space *confspace.Space) Option {
	return func(s *Service) { s.sparkSpace = space }
}

// WithNodeRange bounds stage-1 cluster sizes (default [2, 16]).
func WithNodeRange(min, max int) Option {
	return func(s *Service) { s.minNodes, s.maxNodes = min, max }
}

// WithBudgets sets the stage-1 and stage-2 execution budgets (defaults
// 12 and 30 — the bounded tuning cost of §IV-C).
func WithBudgets(cloudRuns, discRuns int) Option {
	return func(s *Service) { s.cloudBudget, s.discBudget = cloudRuns, discRuns }
}

// WithInterference sets the co-location level tenant environments see
// (default none).
func WithInterference(level cloud.InterferenceLevel) Option {
	return func(s *Service) { s.interference = level }
}

// WithTransferThreshold sets the similarity gate for cross-workload
// warm-starting (0 = transfer.DefaultSimilarityThreshold). Similarity is
// in (0, 1], so a threshold above 1 disables transfer entirely — which
// also makes concurrent tuning results bit-identical to sequential ones,
// since warm-start content otherwise depends on which other sessions have
// already landed in the history store.
func WithTransferThreshold(t float64) Option {
	return func(s *Service) { s.transferThreshold = t }
}

// WithSurrogate sets the default surrogate model backend Bayesian-
// optimization sessions fit — a surrogate.Names() entry: "gp" (exact
// Gaussian process, the default), "rffgp" (random-feature GP
// approximation), or "forest" (random forest). Per-registration choices
// override it. NewService rejects unknown names.
func WithSurrogate(name string) Option {
	return func(s *Service) { s.surrogateKind = name }
}

// WithPruning sets the service-wide default for significance-aware
// config-space pruning of stage-2 (DISC) sessions: when enabled, the
// Bayesian-optimization session runs a Tuneful-style sensitivity analysis
// alongside the search and collapses onto the significant knobs once the
// importances converge. Default off — sessions without pruning keep
// trajectories bit-identical to pre-pruning services. Per-registration
// choices override it.
func WithPruning(enabled bool) Option {
	return func(s *Service) { s.pruning = enabled }
}

// WithDiagnostics toggles tuner explainability and model-health
// diagnostics (default on): Bayesian-optimization sessions with an
// emitter on the context publish a decide event per EI-guided proposal
// and an internal/diagnose monitor scores the surrogate online, adding
// model_health and stall events. Diagnostics observe the tuner — they
// never touch its random stream — so trajectories are bit-identical
// with them on or off; turning them off only silences the extra event
// families.
func WithDiagnostics(enabled bool) Option {
	return func(s *Service) { s.diagnostics = enabled }
}

// WithSimCache enables the shared simulator evaluation cache (nil —
// the default — disables it). The trade-off is a change of determinism
// contract, which is why caching is opt-in:
//
//   - Cache off (nil): every execution draws from the session's
//     sequential random stream, the legacy behavior. Results are
//     reproducible run-for-run against pre-cache versions of the
//     service.
//   - Cache on: every execution draws from a fresh stream whose seed is
//     derived from the service seed and the execution's content
//     (workload, input size, cluster, configuration, interference
//     factors). Sessions remain fully deterministic and replayable —
//     same seed, same submissions, same results — and re-evaluating a
//     configuration point anywhere in the service (retries, elites,
//     other tenants tuning the same workload) returns the bit-identical
//     cached Result instead of a fresh simulation.
//
// Executions still land in the history store on hits: the cache
// memoizes the simulator, not the bookkeeping.
func WithSimCache(c *simcache.Cache) Option {
	return func(s *Service) { s.simCache = c }
}

// NewService returns a configured service, rejecting unusable option
// combinations (empty node range, non-positive budgets, missing
// substrates).
func NewService(opts ...Option) (*Service, error) {
	s := &Service{
		catalog:     cloud.DefaultCatalog(),
		store:       &history.Store{},
		sparkSpace:  confspace.SparkSpace(),
		seed:        1,
		minNodes:    2,
		maxNodes:    16,
		cloudBudget: 12,
		discBudget:  30,
		probeRuns:   3,
		diagnostics: true,
		subs:        make(map[string]int),
	}
	for _, o := range opts {
		o(s)
	}
	if s.catalog == nil {
		return nil, errors.New("core: nil instance catalog")
	}
	if s.sparkSpace == nil {
		return nil, errors.New("core: nil Spark configuration space")
	}
	if s.minNodes < 1 || s.maxNodes < s.minNodes {
		return nil, fmt.Errorf("core: invalid node range [%d, %d]", s.minNodes, s.maxNodes)
	}
	if s.cloudBudget <= 0 || s.discBudget <= 0 {
		return nil, fmt.Errorf("core: budgets must be positive (cloud %d, disc %d)", s.cloudBudget, s.discBudget)
	}
	if s.transferThreshold < 0 {
		return nil, fmt.Errorf("core: negative transfer threshold %v", s.transferThreshold)
	}
	if s.surrogateKind != "" && !surrogate.Valid(s.surrogateKind) {
		return nil, fmt.Errorf("core: unknown surrogate %q (accepted: %s)",
			s.surrogateKind, strings.Join(surrogate.Names(), ", "))
	}
	if s.storage != nil {
		// Recover before hooking: replayed records were already persisted
		// and must not be re-appended to the backend.
		events, err := s.storage.Recover(s.store)
		if err != nil {
			return nil, fmt.Errorf("core: recovering history: %w", err)
		}
		s.recoveredEvents = events
		b := s.storage
		s.store.SetPersist(func(r history.Record) {
			if err := b.AppendRecord(r); err != nil {
				// The record is in the in-memory store but NOT durable
				// (disk full, sticky WAL write error). Count it, keep the
				// error for PersistHealth, and log — but rate-limited,
				// because a sticky backend error fails every subsequent
				// append.
				n := s.persistFailures.Add(1)
				s.persistMu.Lock()
				s.lastPersistErr = err
				s.persistMu.Unlock()
				if n == 1 || n%100 == 0 {
					log.Printf("core: persisting history record seq=%d failed (%d failures so far): %v", r.Seq, n, err)
				}
			}
		})
	}
	return s, nil
}

// Storage returns the attached persistence backend (nil without one).
func (s *Service) Storage() storage.Backend { return s.storage }

// PersistHealth reports how many history records the persist hook failed
// to make durable and the most recent failure (nil when every record
// reached the backend). A non-zero count means completed tuning results
// exist only in memory — the signal /healthz degrades on.
func (s *Service) PersistHealth() (failures int64, last error) {
	failures = s.persistFailures.Load()
	if failures == 0 {
		return 0, nil
	}
	s.persistMu.Lock()
	last = s.lastPersistErr
	s.persistMu.Unlock()
	return failures, last
}

// RecoveredEvents returns the telemetry events the storage backend
// replayed at construction, oldest first. They are history, not live
// traffic: republishing them to an event log would re-stamp sequence
// numbers and re-persist them.
func (s *Service) RecoveredEvents() []obs.Event { return s.recoveredEvents }

// Pruning returns the service-wide default for significance-aware
// config-space pruning.
func (s *Service) Pruning() bool { return s.pruning }

// Diagnostics reports whether tuner explainability diagnostics are on.
func (s *Service) Diagnostics() bool { return s.diagnostics }

// Surrogate returns the service's default surrogate backend name.
func (s *Service) Surrogate() string {
	if s.surrogateKind != "" {
		return s.surrogateKind
	}
	return surrogate.KindGP
}

// resolveSurrogate returns the backend a session for reg will fit: the
// registration's explicit choice, else the service default.
func (s *Service) resolveSurrogate(reg Registration) string {
	if reg.Surrogate != "" {
		return reg.Surrogate
	}
	return s.Surrogate()
}

// resolvePruning reports whether reg's stage-2 session prunes: the
// registration's opt-in, else the service default.
func (s *Service) resolvePruning(reg Registration) bool {
	return reg.Pruning || s.pruning
}

// newBayesOpt builds a session's tuner with the resolved surrogate
// backend and a surrogate seed derived from the session's base seed.
// Derivation is stateless — the session's sequential stream is never
// consumed — so the default exact-GP path remains bit-identical to
// pre-surrogate-tier services.
func (s *Service) newBayesOpt(space *confspace.Space, reg Registration, base int64) *tuner.BayesOpt {
	bo := tuner.NewBayesOpt(space)
	bo.Surrogate = s.resolveSurrogate(reg)
	bo.SurrogateSeed = stat.DeriveSeed(base, "surrogate")
	return bo
}

// sessionSeed assigns the next submission number for (kind, tenant,
// workload) and derives the session's base seed from it. Submission
// numbers advance per workload key, so as long as one tenant's
// submissions keep their order (the job engine's per-tenant FIFO
// guarantees this), every session sees the same stream regardless of how
// sessions of different tenants interleave.
func (s *Service) sessionSeed(kind string, reg Registration) int64 {
	key := kind + "\x00" + reg.Tenant + "\x00" + reg.Workload.Name()
	s.subMu.Lock()
	n := s.subs[key]
	s.subs[key] = n + 1
	s.subMu.Unlock()
	return stat.DeriveSeed(s.seed, kind, reg.Tenant, reg.Workload.Name(), strconv.Itoa(n))
}

// Store exposes the multi-tenant execution history.
func (s *Service) Store() *history.Store { return s.store }

// CacheStats snapshots the evaluation cache (zero Stats when disabled).
func (s *Service) CacheStats() simcache.Stats { return s.simCache.Stats() }

// SparkSpace exposes the DISC search space in use.
func (s *Service) SparkSpace() *confspace.Space { return s.sparkSpace }

// Registration describes one tenant workload submitted for tuning.
type Registration struct {
	Tenant     string
	Workload   workload.Workload
	InputBytes int64
	Objective  slo.Objective
	// TuningBudgetUSD caps the session's total tuning spend for live SLO
	// accounting (0 = unconstrained). Breaching it — in actual or
	// projected spend — emits slo_violation events; it does not abort the
	// session.
	TuningBudgetUSD float64
	// Surrogate optionally overrides the service's default surrogate
	// model backend for this workload's sessions (a surrogate.Names()
	// entry; empty = service default).
	Surrogate string
	// Pruning opts this workload's stage-2 sessions into significance-
	// aware config-space pruning (see WithPruning). Off by default: an
	// unpruned session's trajectory is bit-identical to pre-pruning
	// services.
	Pruning bool
}

// Validate reports whether the registration is usable.
func (r Registration) Validate() error {
	if r.Tenant == "" {
		return errors.New("core: registration needs a tenant")
	}
	if r.Workload == nil {
		return errors.New("core: registration needs a workload")
	}
	if r.InputBytes <= 0 {
		return fmt.Errorf("core: input size %d must be positive", r.InputBytes)
	}
	if r.Surrogate != "" && !surrogate.Valid(r.Surrogate) {
		return fmt.Errorf("core: unknown surrogate %q (accepted: %s)",
			r.Surrogate, strings.Join(surrogate.Names(), ", "))
	}
	return nil
}

// execute runs one configuration on one cluster, records it in the
// history, and returns the measurement. The execution inherits the
// context's trace, so simulator spans nest under the calling phase.
func (s *Service) execute(ctx context.Context, reg Registration, cluster cloud.ClusterSpec, cfg confspace.Config, factors cloud.Factors, rng *rand.Rand, tel *sessionTelemetry, phase string) (spark.Result, tuner.Measurement) {
	mExecutions.Inc()
	job := reg.Workload.Job(reg.InputBytes)
	conf := spark.FromConfig(s.sparkSpace, cfg)
	opts := spark.RunOpts{Trace: obs.FromContext(ctx)}
	var res spark.Result
	if s.simCache != nil {
		// Cached mode: the execution's randomness comes from a stream
		// seeded by its content, not from the shared session stream, so
		// identical points — across retries, tuners, and tenants — are
		// identical executions and therefore cache hits. See WithSimCache
		// for the determinism contract.
		res = s.simCache.Run(job, conf, cluster, factors, opts, s.executionSeed(reg, cluster, cfg, factors))
	} else {
		res = spark.RunWith(job, conf, cluster, factors, opts, rng)
	}
	s.store.Append(history.Record{
		Tenant:     reg.Tenant,
		Workload:   reg.Workload.Name(),
		InputBytes: reg.InputBytes,
		Cluster:    cluster.String(),
		Config:     cfg,
		RuntimeS:   res.RuntimeS,
		CostUSD:    res.CostUSD,
		Failed:     res.Failed,
		Reason:     res.Reason,
		Metrics:    history.MetricsFromResult(res),
	})
	tel.recordExecution(phase, cluster, res)
	return res, tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
}

// executionSeed derives the content-determined seed of one cached-mode
// execution: a pure function of the service seed and everything that
// defines the simulation point.
func (s *Service) executionSeed(reg Registration, cluster cloud.ClusterSpec, cfg confspace.Config, factors cloud.Factors) int64 {
	return stat.DeriveSeed(s.seed, "exec",
		reg.Workload.Name(),
		strconv.FormatInt(reg.InputBytes, 10),
		cluster.String(),
		cfg.Canonical(),
		factorsKey(factors),
	)
}

// factorsKey renders interference factors with exact bit precision.
func factorsKey(f cloud.Factors) string {
	return strconv.FormatFloat(f.CPU, 'x', -1, 64) + "," +
		strconv.FormatFloat(f.Net, 'x', -1, 64) + "," +
		strconv.FormatFloat(f.Disk, 'x', -1, 64)
}

// CloudChoice is the outcome of stage 1 (Fig. 1): a concrete cluster.
type CloudChoice struct {
	Cluster cloud.ClusterSpec
	Session tuner.Result
}

// TuneCloud runs stage 1: Bayesian optimization (CherryPick-style) over
// the instance-type × cluster-size space, executing the workload under
// the spark defaults-with-scaling configuration on each candidate.
// Cancelling ctx aborts the session between executions.
func (s *Service) TuneCloud(ctx context.Context, reg Registration) (CloudChoice, error) {
	if err := reg.Validate(); err != nil {
		return CloudChoice{}, err
	}
	tel := newSessionTelemetry(obs.EmitterFrom(ctx), reg, s.cloudBudget, s.diagnostics)
	tel.sessionStart()
	cc, err := s.tuneCloud(ctx, reg, s.sessionSeed("cloud", reg), tel)
	tel.sessionEnd(sessionOutcome(err))
	return cc, err
}

// tuneCloud is TuneCloud with the session's base seed fixed by the
// caller; TunePipeline uses it to keep both stages on one derived stream.
func (s *Service) tuneCloud(ctx context.Context, reg Registration, base int64, tel *sessionTelemetry) (CloudChoice, error) {
	defer phaseSpan(ctx, "tune-cloud")()
	cloudSpace, err := confspace.CloudSpace(s.catalog, s.minNodes, s.maxNodes)
	if err != nil {
		return CloudChoice{}, err
	}
	env := cloud.NewEnvironment(s.interference, stat.DeriveSeed(base, "env"))
	rng := stat.DeriveRNG(base, "search")
	bo := s.newBayesOpt(cloudSpace, reg, base)
	bo.InitSamples = 4
	tel.attachDiagnostics(bo, "cloud")
	obj := func(cfg confspace.Config) tuner.Measurement {
		spec, err := confspace.ClusterFromConfig(s.catalog, cloudSpace, cfg)
		if err != nil {
			return tuner.Measurement{Runtime: 0, Failed: true}
		}
		// Stage 1 measures with a scaled reference DISC configuration so
		// the cluster choice is not confounded by a bad Spark config.
		_, m := s.execute(ctx, reg, spec, s.referenceConf(spec), env.Next(), rng, tel, "cloud")
		return m
	}
	if h := tel.trialHook("cloud"); h != nil {
		ctx = tuner.WithTrialHook(ctx, h)
	}
	res, err := tuner.RunContext(ctx, bo, obj, s.cloudBudget, rng)
	if err != nil {
		return CloudChoice{}, err
	}
	if !res.Found {
		return CloudChoice{}, fmt.Errorf("core: no cloud configuration succeeded for %s/%s", reg.Tenant, reg.Workload.Name())
	}
	spec, err := confspace.ClusterFromConfig(s.catalog, cloudSpace, res.Best.Config)
	if err != nil {
		return CloudChoice{}, err
	}
	return CloudChoice{Cluster: spec, Session: res}, nil
}

// referenceConf scales Spark defaults to a cluster: executors sized to
// the nodes, parallelism to the cores. This mimics the provider's
// "sensible baseline" used while the cloud choice is being made.
func (s *Service) referenceConf(spec cloud.ClusterSpec) confspace.Config {
	cfg := s.sparkSpace.Default()
	set := func(name string, v float64) {
		if _, err := s.sparkSpace.Param(name); err == nil {
			p, _ := s.sparkSpace.Param(name)
			cfg[name] = p.Clamp(v)
		}
	}
	coresPer := 4
	if spec.Instance.VCPUs < 4 {
		coresPer = spec.Instance.VCPUs
	}
	execs := spec.TotalCores() / coresPer
	set(confspace.ParamExecutorCores, float64(coresPer))
	set(confspace.ParamExecutorInstances, float64(execs))
	memPer := spec.Instance.MemoryGB * 1024 / float64(maxInt(spec.Instance.VCPUs/coresPer, 1)) * 0.55
	set(confspace.ParamExecutorMemoryMB, memPer)
	set(confspace.ParamDriverMemoryMB, 4096)
	set(confspace.ParamDefaultParallelism, float64(2*spec.TotalCores()))
	set(confspace.ParamShufflePartitions, float64(2*spec.TotalCores()))
	return cfg
}

// DISCChoice is the outcome of stage 2: a Spark configuration.
type DISCChoice struct {
	Config  confspace.Config
	Session tuner.Result
	// WarmStarted reports whether a similar workload's history seeded the
	// model, and Source identifies it.
	WarmStarted bool
	Source      history.WorkloadKey
	Similarity  float64
	// Pruned reports the session ran with significance-aware config-space
	// pruning; ActiveDims/TotalDims give the final search dimension
	// against the full space, and PrunedKnobs the knobs pinned when the
	// session ended (empty if the analysis never converged on a shrink).
	Pruned      bool
	ActiveDims  int
	TotalDims   int
	PrunedKnobs []string
}

// TuneDISC runs stage 2 on a fixed cluster: probe runs fingerprint the
// workload, the most similar workload in the store (possibly another
// tenant's) warm-starts a Bayesian-optimization session, and the session
// runs to the configured budget. Cancelling ctx aborts the session
// between executions.
func (s *Service) TuneDISC(ctx context.Context, reg Registration, cluster cloud.ClusterSpec) (DISCChoice, error) {
	if err := reg.Validate(); err != nil {
		return DISCChoice{}, err
	}
	tel := newSessionTelemetry(obs.EmitterFrom(ctx), reg, s.probeRuns+s.discBudget, s.diagnostics)
	tel.sessionStart()
	dc, err := s.tuneDISC(ctx, reg, cluster, s.sessionSeed("disc", reg), tel)
	tel.sessionEnd(sessionOutcome(err))
	return dc, err
}

// tuneDISC is TuneDISC with the session's base seed fixed by the caller.
func (s *Service) tuneDISC(ctx context.Context, reg Registration, cluster cloud.ClusterSpec, base int64, tel *sessionTelemetry) (DISCChoice, error) {
	if err := cluster.Validate(); err != nil {
		return DISCChoice{}, err
	}
	defer phaseSpan(ctx, "tune-disc")()
	env := cloud.NewEnvironment(s.interference, stat.DeriveSeed(base, "env"))
	rng := stat.DeriveRNG(base, "search")

	// Probe with the reference configuration to fingerprint the workload.
	endProbe := phaseSpan(ctx, "probe")
	ref := s.referenceConf(cluster)
	for i := 0; i < s.probeRuns; i++ {
		if err := ctx.Err(); err != nil {
			endProbe()
			return DISCChoice{}, err
		}
		s.execute(ctx, reg, cluster, ref, env.Next(), rng, tel, "probe")
	}
	endProbe()

	choice := DISCChoice{}
	sel, trials := s.warmStart(reg)
	if sel.Accepted && len(trials) > 0 {
		choice.WarmStarted = true
		choice.Source = sel.Source
		choice.Similarity = sel.Similarity
	} else {
		trials = nil
	}

	// Pruning sessions wrap BayesOpt in the significance-analysis tier;
	// plain sessions construct BayesOpt exactly as before, so their
	// trajectories stay bit-identical to pre-pruning services.
	var tn tuner.Tuner
	var pruned *tuner.PrunedBayesOpt
	if s.resolvePruning(reg) {
		pb := tuner.NewPrunedBayesOpt(s.sparkSpace)
		pb.Surrogate = s.resolveSurrogate(reg)
		pb.SurrogateSeed = stat.DeriveSeed(base, "surrogate")
		pb.Prune = sensitivity.Config{Seed: stat.DeriveSeed(base, "prune")}
		pb.Hook = tel.pruneHook("disc", s.sparkSpace.Names())
		if choice.WarmStarted {
			pb.WarmStart = trials
			pb.InitSamples = 3
		}
		pruned, tn = pb, pb
	} else {
		bo := s.newBayesOpt(s.sparkSpace, reg, base)
		if choice.WarmStarted {
			bo.WarmStart = trials
			bo.InitSamples = 3
		}
		tn = bo
	}
	tel.attachDiagnostics(tn, "disc")

	obj := func(cfg confspace.Config) tuner.Measurement {
		_, m := s.execute(ctx, reg, cluster, cfg, env.Next(), rng, tel, "disc")
		return m
	}
	if h := tel.trialHook("disc"); h != nil {
		ctx = tuner.WithTrialHook(ctx, h)
	}
	res, err := tuner.RunContext(ctx, tn, obj, s.discBudget, rng)
	if err != nil {
		return DISCChoice{}, err
	}
	if !res.Found {
		return DISCChoice{}, fmt.Errorf("core: no DISC configuration succeeded for %s/%s", reg.Tenant, reg.Workload.Name())
	}
	choice.Config = res.Best.Config
	choice.Session = res
	if pruned != nil {
		choice.Pruned = true
		choice.ActiveDims, choice.TotalDims = pruned.ActiveDims()
		if sub := pruned.Subspace(); sub != nil {
			choice.PrunedKnobs = sub.PrunedNames()
		}
	}
	return choice, nil
}

// warmStart fingerprints the target from its probe runs and looks for an
// acceptable transfer source among every other workload in the store.
func (s *Service) warmStart(reg Registration) (transfer.SourceSelection, []tuner.Trial) {
	own := s.store.Query(history.Filter{Tenant: reg.Tenant, Workload: reg.Workload.Name()})
	target, err := transfer.FingerprintOf(transfer.WellConfigured(own))
	if err != nil {
		return transfer.SourceSelection{}, nil
	}
	candidates := make(map[history.WorkloadKey]transfer.Fingerprint)
	for _, key := range s.store.Workloads() {
		if key.Tenant == reg.Tenant && key.Workload == reg.Workload.Name() {
			continue
		}
		recs := s.store.Query(history.Filter{Tenant: key.Tenant, Workload: key.Workload})
		fp, err := transfer.FingerprintOf(transfer.WellConfigured(recs))
		if err != nil {
			continue
		}
		candidates[key] = fp
	}
	if len(candidates) == 0 {
		return transfer.SourceSelection{}, nil
	}
	sel := transfer.SelectSource(target, candidates, s.transferThreshold)
	if !sel.Accepted {
		return sel, nil
	}
	recs := s.store.Query(history.Filter{Tenant: sel.Source.Tenant, Workload: sel.Source.Workload})
	return sel, transfer.WarmStartTrials(recs, s.sparkSpace, 20)
}

// PipelineResult is the outcome of the full Fig. 1 pipeline.
type PipelineResult struct {
	Cloud CloudChoice
	DISC  DISCChoice
	// DefaultRuntimeS is the scaled-defaults runtime on the chosen
	// cluster, the improvement baseline of §V-C.
	DefaultRuntimeS float64
	// TunedRuntimeS is the best runtime found.
	TunedRuntimeS float64
	// TuningCostUSD totals both stages' execution cost.
	TuningCostUSD float64
	// Surrogate is the resolved surrogate backend both stages fitted.
	Surrogate string
	// Pruning reports whether stage 2 ran with significance-aware
	// config-space pruning (see DISC.ActiveDims for the outcome).
	Pruning bool
}

// Improvement returns the relative runtime improvement over the scaled
// defaults.
func (p PipelineResult) Improvement() float64 {
	return slo.ImprovementOverDefault(p.TunedRuntimeS, p.DefaultRuntimeS)
}

// TunePipeline runs both stages of Fig. 1 and reports the end-to-end
// outcome. The whole pipeline draws from one random stream derived from
// (seed, tenant, workload, submission #): two services with the same seed
// given the same submissions in the same per-tenant order produce
// identical results, no matter how many pipelines run concurrently.
// Cancelling ctx aborts the pipeline between executions.
func (s *Service) TunePipeline(ctx context.Context, reg Registration) (PipelineResult, error) {
	if err := reg.Validate(); err != nil {
		return PipelineResult{}, err
	}
	start := time.Now()
	defer func() { mPipelineSeconds.Observe(time.Since(start).Seconds()) }()
	defer phaseSpan(ctx, "pipeline")()
	// The session's execution budget: both stages' trials, the probe runs,
	// and the baseline measurement.
	tel := newSessionTelemetry(obs.EmitterFrom(ctx), reg, s.cloudBudget+s.probeRuns+s.discBudget+1, s.diagnostics)
	tel.sessionStart()
	base := s.sessionSeed("pipeline", reg)
	cc, err := s.tuneCloud(ctx, reg, stat.DeriveSeed(base, "cloud"), tel)
	if err != nil {
		tel.sessionEnd(sessionOutcome(err))
		return PipelineResult{}, err
	}
	dc, err := s.tuneDISC(ctx, reg, cc.Cluster, stat.DeriveSeed(base, "disc"), tel)
	if err != nil {
		tel.sessionEnd(sessionOutcome(err))
		return PipelineResult{}, err
	}
	// Measure the baseline once for the improvement report.
	endBaseline := phaseSpan(ctx, "baseline")
	env := cloud.NewEnvironment(s.interference, stat.DeriveSeed(base, "baseline-env"))
	rng := stat.DeriveRNG(base, "baseline")
	baseRes, _ := s.execute(ctx, reg, cc.Cluster, s.referenceConf(cc.Cluster), env.Next(), rng, tel, "baseline")
	endBaseline()
	res := PipelineResult{
		Cloud:           cc,
		DISC:            dc,
		DefaultRuntimeS: baseRes.RuntimeS,
		TunedRuntimeS:   dc.Session.Best.Runtime,
		TuningCostUSD:   cc.Session.TotalCost + dc.Session.TotalCost,
		Surrogate:       s.resolveSurrogate(reg),
		Pruning:         s.resolvePruning(reg),
	}
	tel.sessionEnd(fmt.Sprintf("tuned %.1fs vs default %.1fs (%.0f%% improvement) on %s",
		res.TunedRuntimeS, res.DefaultRuntimeS, res.Improvement()*100, cc.Cluster))
	return res, nil
}

// sessionOutcome renders a session's terminal detail string.
func sessionOutcome(err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok"
}

// BestKnownSecondsPerGB returns the best scale-normalized runtime
// (seconds per input GB) ever recorded for a workload type across all
// tenants — the §IV-D substitute for the unknowable optimum. ok is false
// when the store has no successful runs of that workload.
func (s *Service) BestKnownSecondsPerGB(workloadName string) (float64, bool) {
	recs := s.store.Query(history.Filter{Workload: workloadName, SucceededOnly: true})
	best, found := 0.0, false
	for _, r := range recs {
		if r.InputBytes <= 0 {
			continue
		}
		v := r.RuntimeS / (float64(r.InputBytes) / (1 << 30))
		if !found || v < best {
			best, found = v, true
		}
	}
	return best, found
}

// EffectivenessReport scores a tenant's workload against the SLO metric:
// its best achieved seconds/GB versus the cross-tenant best known.
type EffectivenessReport struct {
	Tenant        string
	Workload      string
	BestOwn       float64 // seconds per GB
	BestKnown     float64 // seconds per GB, across tenants
	Effectiveness float64 // relative gap (0 = at the best known)
}

// Effectiveness reports the SLO tuning-effectiveness metric for one
// tenant workload.
func (s *Service) Effectiveness(tenant, workloadName string) (EffectivenessReport, error) {
	own := s.store.Query(history.Filter{Tenant: tenant, Workload: workloadName, SucceededOnly: true})
	if len(own) == 0 {
		return EffectivenessReport{}, fmt.Errorf("core: no successful runs for %s/%s", tenant, workloadName)
	}
	bestOwn, found := 0.0, false
	for _, r := range own {
		if r.InputBytes <= 0 {
			continue
		}
		v := r.RuntimeS / (float64(r.InputBytes) / (1 << 30))
		if !found || v < bestOwn {
			bestOwn, found = v, true
		}
	}
	bestKnown, _ := s.BestKnownSecondsPerGB(workloadName)
	return EffectivenessReport{
		Tenant:        tenant,
		Workload:      workloadName,
		BestOwn:       bestOwn,
		BestKnown:     bestKnown,
		Effectiveness: slo.Effectiveness(bestOwn, bestKnown),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
