package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/history"
	"seamlesstune/internal/workload"
)

// server wraps a core.Service behind HTTP handlers. The service itself is
// single-threaded (one deterministic RNG), so a mutex serializes tuning
// requests; reads of the history store are safe concurrently.
type server struct {
	mu        sync.Mutex
	svc       *core.Service
	mux       *http.ServeMux
	statePath string
}

func newServer(cfg serverConfig) (*server, error) {
	opts := cfg.options()
	if cfg.Params > 0 {
		opts = append(opts, core.WithSparkSpace(confspace.SparkSubspace(cfg.Params)))
	}
	if cfg.StatePath != "" {
		store := &history.Store{}
		if _, err := os.Stat(cfg.StatePath); err == nil {
			if err := store.LoadFile(cfg.StatePath); err != nil {
				return nil, fmt.Errorf("loading state %s: %w", cfg.StatePath, err)
			}
		}
		opts = append(opts, core.WithStore(store))
	}
	s := &server{
		svc:       core.NewService(opts...),
		mux:       http.NewServeMux(),
		statePath: cfg.StatePath,
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/tune", s.handleTune)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/history", s.handleHistory)
	s.mux.HandleFunc("/v1/effectiveness", s.handleEffectiveness)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// tuneRequest is the tenant-facing submission: just the workload and an
// input size — no knobs, per the paper's principle 1.
type tuneRequest struct {
	Tenant   string  `json:"tenant"`
	Workload string  `json:"workload"`
	InputGB  float64 `json:"inputGB"`
}

// tuneResponse reports what the pipeline chose and achieved.
type tuneResponse struct {
	Cluster         string           `json:"cluster"`
	Config          confspace.Config `json:"config"`
	DefaultRuntimeS float64          `json:"defaultRuntimeS"`
	TunedRuntimeS   float64          `json:"tunedRuntimeS"`
	ImprovementPct  float64          `json:"improvementPct"`
	TuningCostUSD   float64          `json:"tuningCostUSD"`
	WarmStarted     bool             `json:"warmStarted"`
	WarmSource      string           `json:"warmSource,omitempty"`
}

func (s *server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req tuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		usageError(w, "bad request body: %v", err)
		return
	}
	wl, err := workload.ByName(req.Workload)
	if err != nil {
		usageError(w, "%v (known: %v)", err, workload.Names())
		return
	}
	if req.InputGB <= 0 {
		usageError(w, "inputGB must be positive")
		return
	}
	if req.Tenant == "" {
		usageError(w, "tenant is required")
		return
	}
	reg := core.Registration{
		Tenant:     req.Tenant,
		Workload:   wl,
		InputBytes: int64(req.InputGB * (1 << 30)),
	}
	s.mu.Lock()
	res, err := s.svc.TunePipeline(reg)
	s.persistLocked()
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := tuneResponse{
		Cluster:         res.Cloud.Cluster.String(),
		Config:          res.DISC.Config,
		DefaultRuntimeS: res.DefaultRuntimeS,
		TunedRuntimeS:   res.TunedRuntimeS,
		ImprovementPct:  res.Improvement() * 100,
		TuningCostUSD:   res.TuningCostUSD,
		WarmStarted:     res.DISC.WarmStarted,
	}
	if res.DISC.WarmStarted {
		resp.WarmSource = res.DISC.Source.String()
	}
	writeJSON(w, resp)
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.svc.Store().Workloads())
}

func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			usageError(w, "bad limit %q", v)
			return
		}
		limit = n
	}
	recs := s.svc.Store().Query(history.Filter{
		Tenant:   r.URL.Query().Get("tenant"),
		Workload: r.URL.Query().Get("workload"),
		MaxN:     limit,
	})
	writeJSON(w, recs)
}

func (s *server) handleEffectiveness(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	tenant := r.URL.Query().Get("tenant")
	wl := r.URL.Query().Get("workload")
	if tenant == "" || wl == "" {
		usageError(w, "tenant and workload are required")
		return
	}
	rep, err := s.svc.Effectiveness(tenant, wl)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rep)
}

// persistLocked saves the history store when persistence is configured.
// Callers hold s.mu.
func (s *server) persistLocked() {
	if s.statePath == "" {
		return
	}
	if err := s.svc.Store().SaveFile(s.statePath); err != nil {
		log.Printf("tuneserve: persisting state to %s: %v", s.statePath, err)
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding in-memory values cannot fail in a way the client can act
	// on; log-less best effort is fine for a demo server.
	_ = enc.Encode(v)
}
