package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"seamlesstune/internal/confspace"
	"seamlesstune/internal/core"
	"seamlesstune/internal/history"
	"seamlesstune/internal/jobs"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/simcache"
	"seamlesstune/internal/slo"
	"seamlesstune/internal/storage"
	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/telemetry"
	"seamlesstune/internal/workload"
)

// server wraps a core.Service behind HTTP handlers. The service is safe
// for concurrent use; tuning work runs on the job engine's worker pool
// (per-tenant FIFO, distinct tenants in parallel), and the execution
// history persists through a pluggable storage backend — WAL appends,
// coalesced snapshots, or nothing.
type server struct {
	svc     *core.Service
	mux     *http.ServeMux
	engine  *jobs.Engine
	started time.Time
	// tracer ring-buffers tuning spans; traces maps job IDs to their
	// trace IDs for GET /v1/jobs/{id}/trace.
	tracer  *obs.Tracer
	traceMu sync.Mutex
	traces  map[string]uint64
	// events is the live telemetry bus: sessions publish, SSE handlers
	// and the usage pump subscribe. The storage backend taps the stream
	// via SetSink and receives the ring on shutdown via FlushEvents.
	events   *obs.EventLog
	pumpDone chan struct{}
	// storage is the persistence tier: history records append through the
	// store's persist hook, events through the log's sink, and admission
	// control sheds submissions when it saturates.
	storage storage.Backend
	// telemetry samples the metrics registry into the embedded
	// time-series store behind /v1/query; alerts evaluates the rule set
	// on every sample and surfaces lifecycle state on /v1/alerts.
	telemetry *telemetry.Store
	alerts    *telemetry.Engine
}

func newServer(cfg serverConfig) (*server, error) {
	opts := cfg.options()
	if cfg.Params > 0 {
		opts = append(opts, core.WithSparkSpace(confspace.SparkSubspace(cfg.Params)))
	}
	var cache *simcache.Cache
	if cfg.SimCache {
		cache = simcache.New(cfg.SimCacheCapacity)
		opts = append(opts, core.WithSimCache(cache))
	}
	backend, err := storage.Open(storage.Config{
		Backend:         cfg.Backend,
		DataDir:         cfg.DataDir,
		StatePath:       cfg.StatePath,
		EventsPath:      cfg.EventsPath,
		FsyncInterval:   cfg.FsyncInterval,
		SegmentBytes:    cfg.SegmentBytes,
		CompactSegments: cfg.CompactSegments,
	})
	if err != nil {
		return nil, err
	}
	opts = append(opts, core.WithStorage(backend))
	svc, err := core.NewService(opts...)
	if err != nil {
		backend.Close()
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	s := &server{
		svc:      svc,
		mux:      http.NewServeMux(),
		engine:   jobs.NewEngine(workers, cfg.MaxQueued),
		started:  time.Now(),
		tracer:   obs.NewTracer(obs.DefaultTraceCapacity),
		traces:   make(map[string]uint64),
		events:   obs.NewEventLog(cfg.EventsCapacity),
		pumpDone: make(chan struct{}),
		storage:  backend,
	}
	if backend.Name() == "wal" {
		// Tap the event stream into the WAL (asynchronous, bounded, shed
		// at the queue bound). The snapshot backend instead receives the
		// ring via FlushEvents at shutdown, matching its legacy contract.
		s.events.SetSink(func(e obs.Event) { backend.AppendEvent(e) })
	}
	s.engine.SetBackpressure(backend.Saturated)
	go s.usagePump()
	if cache != nil {
		s.engine.SetCacheStats(cache.Stats)
	}
	// Telemetry tier: restore rollup history from the backend's replay,
	// then persist newly sealed buckets through it, and let compaction
	// snapshots carry the full sealed state forward. The alert engine
	// evaluates on every sample and publishes transitions onto the event
	// bus (and from there the SSE stream and the WAL sink).
	tel := telemetry.NewStore(telemetry.Config{
		Interval:  cfg.TelemetryInterval,
		Retention: cfg.TelemetryRetention,
	})
	recovered := backend.RecoveredTelemetry()
	tel.Restore(recovered)
	tel.SetPersist(backend.AppendTelemetry)
	backend.SetTelemetrySource(tel.PersistedState)
	rules, err := telemetry.LoadRules(cfg.AlertRules)
	if err != nil {
		s.shutdownPartial()
		return nil, fmt.Errorf("loading alert rules: %w", err)
	}
	alerts, err := telemetry.NewEngine(tel, rules)
	if err != nil {
		s.shutdownPartial()
		return nil, fmt.Errorf("alert rules: %w", err)
	}
	alerts.SetSink(s.events.Publish)
	tel.OnSample(alerts.Eval)
	if len(recovered) > 0 {
		// Replay restored history through the rules silently, then emit a
		// single firing event per rule still firing — a restart inside an
		// incident re-pages once instead of replaying the flap history.
		now := time.Now()
		alerts.Rearm(now.Add(-time.Hour), now, tel.TierWidths()[2])
	}
	tel.Start()
	s.telemetry = tel
	s.alerts = alerts
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/explain", s.handleExplain)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/tenants/{id}/usage", s.handleTenantUsage)
	s.mux.HandleFunc("GET /v1/usage", s.handleUsage)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/history", s.handleHistory)
	s.mux.HandleFunc("GET /v1/effectiveness", s.handleEffectiveness)
	s.mux.HandleFunc("POST /v1/admin/compact", s.handleCompact)
	s.mux.HandleFunc("GET /v1/admin/storage", s.handleStorage)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/alerts", s.handleAlerts)
	return s, nil
}

// shutdownPartial unwinds a half-constructed server on a newServer error
// path: the engine, the event bus, the usage pump, and the backend.
func (s *server) shutdownPartial() {
	s.engine.Close()
	s.events.Close()
	<-s.pumpDone
	s.storage.Close()
}

// Close drains the worker pool, flushes the event ring to the storage
// backend, releases every SSE subscriber, and closes the backend (its
// final flush) — in that order, so the flushed events include the final
// ones of draining jobs and in-flight SSE handlers return before the
// process exits.
func (s *server) Close() {
	// Stop sampling first: a graceful stop loses at most the open (<1
	// window) bucket per tier — everything sealed is already queued.
	if s.telemetry != nil {
		s.telemetry.Stop()
	}
	s.engine.Close()
	if err := s.storage.FlushEvents(s.events.Snapshot(0)); err != nil {
		log.Printf("tuneserve: flushing events: %v", err)
	}
	s.events.Close()
	<-s.pumpDone
	if err := s.storage.Close(); err != nil {
		log.Printf("tuneserve: closing storage: %v", err)
	}
}

// handleCompact forces a storage compaction: the WAL backend folds its
// sealed segments into a snapshot record; the snapshot backend saves
// synchronously. Returns the post-compaction storage stats.
func (s *server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	if err := s.storage.Compact(); err != nil {
		writeError(w, http.StatusInternalServerError, "compact_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.storage.Stats())
}

// handleStorage reports the storage backend's stats — the data behind
// tunectl storage.
func (s *server) handleStorage(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.storage.Stats())
}

// usagePump folds the event stream into the engine's per-tenant
// accounting: every spend-bearing event accrues trials and dollars, and
// trial events with an incumbent update the tenant's SLO attainment.
// The subscription buffer is generous; under extreme pressure events
// drop (counted in /healthz) rather than stall publishers.
func (s *server) usagePump() {
	defer close(s.pumpDone)
	// Fold the replay before tailing: the pump goroutine may be scheduled
	// after sessions have already published (SubscribeFrom's atomic
	// replay+register guarantees the two halves have no gap or overlap).
	replay, sub := s.events.SubscribeFrom(0, 4096)
	defer sub.Close()
	for _, e := range replay {
		s.foldUsage(e)
	}
	for e := range sub.C() {
		s.foldUsage(e)
	}
}

// foldUsage accrues one telemetry event into the engine's accounting.
func (s *server) foldUsage(e obs.Event) {
	switch e.Type {
	case obs.EventTrial:
		s.engine.AddUsage(e.Tenant, 1, e.CostUSD)
		if e.BestSoFar != 0 {
			s.engine.SetAttainment(e.Tenant, e.Attainment)
		}
	case obs.EventExecution:
		s.engine.AddUsage(e.Tenant, 1, e.CostUSD)
	}
}

// healthResponse is the readiness payload: liveness plus enough state to
// judge whether the instance can take tuning work right now.
type healthResponse struct {
	Status    string         `json:"status"`
	UptimeS   float64        `json:"uptimeS"`
	GoVersion string         `json:"goVersion,omitempty"`
	Revision  string         `json:"revision,omitempty"`
	Engine    jobs.Stats     `json:"engine"`
	Events    obs.EventStats `json:"events"`
	Storage   storage.Stats  `json:"storage"`
	// Telemetry summarizes the embedded time-series store (the storage
	// block's telemetryBlocks/telemetryDropped count its durable side);
	// AlertsFiring is the number of alert rules currently firing.
	Telemetry    telemetry.Stats `json:"telemetry"`
	AlertsFiring int             `json:"alertsFiring,omitempty"`
	// PersistFailures and PersistError report history records that
	// completed in memory but failed to become durable; any failure
	// flips Status to "degraded".
	PersistFailures int64  `json:"persistFailures,omitempty"`
	PersistError    string `json:"persistError,omitempty"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	resp := healthResponse{
		Status:       "ok",
		UptimeS:      time.Since(s.started).Seconds(),
		Engine:       s.engine.Stats(),
		Events:       s.events.Stats(),
		Storage:      s.storage.Stats(),
		Telemetry:    s.telemetry.Stats(),
		AlertsFiring: s.alerts.Firing(),
	}
	if n, err := s.svc.PersistHealth(); n > 0 {
		resp.Status = "degraded"
		resp.PersistFailures = n
		if err != nil {
			resp.PersistError = err.Error()
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.GoVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tuneRequest is the tenant-facing submission: the workload, an input
// size, and optionally a high-level objective — no knobs, per the
// paper's principle 1.
type tuneRequest struct {
	Tenant   string  `json:"tenant"`
	Workload string  `json:"workload"`
	InputGB  float64 `json:"inputGB"`
	// Objective attaches SLO clauses to the session; sessions evaluate
	// them live and stream slo_violation events on breach.
	Objective *objectivePayload `json:"objective,omitempty"`
	// Surrogate selects the model backend BayesOpt sessions fit: "gp"
	// (exact, the default), "rffgp", or "forest". Empty defers to the
	// server's configured default.
	Surrogate string `json:"surrogate,omitempty"`
	// Pruning opts the job's stage-2 session into significance-aware
	// config-space pruning: the tuner analyzes knob importances as
	// evidence accumulates and collapses the search onto the significant
	// knobs. Off by default (or on, if the server runs with -prune).
	Pruning bool `json:"pruning,omitempty"`
}

// objectivePayload is the wire form of an slo.Objective plus the
// session-level tuning-spend cap.
type objectivePayload struct {
	WithinPctOfOptimal float64 `json:"withinPctOfOptimal,omitempty"`
	DeadlineS          float64 `json:"deadlineS,omitempty"`
	BudgetUSDPerRun    float64 `json:"budgetUSDPerRun,omitempty"`
	TuningBudgetUSD    float64 `json:"tuningBudgetUSD,omitempty"`
}

// registration validates the request against the workload registry.
func (req tuneRequest) registration() (core.Registration, error) {
	wl, err := workload.ByName(req.Workload)
	if err != nil {
		return core.Registration{}, fmt.Errorf("%v (known: %v)", err, workload.Names())
	}
	if req.InputGB <= 0 {
		return core.Registration{}, fmt.Errorf("inputGB must be positive")
	}
	if req.Tenant == "" {
		return core.Registration{}, fmt.Errorf("tenant is required")
	}
	if req.Surrogate != "" && !surrogate.Valid(req.Surrogate) {
		return core.Registration{}, fmt.Errorf("unknown surrogate %q (accepted: %s)",
			req.Surrogate, strings.Join(surrogate.Names(), ", "))
	}
	reg := core.Registration{
		Tenant:     req.Tenant,
		Workload:   wl,
		InputBytes: int64(req.InputGB * (1 << 30)),
		Surrogate:  req.Surrogate,
		Pruning:    req.Pruning,
	}
	if o := req.Objective; o != nil {
		if o.WithinPctOfOptimal < 0 || o.DeadlineS < 0 || o.BudgetUSDPerRun < 0 || o.TuningBudgetUSD < 0 {
			return core.Registration{}, fmt.Errorf("objective fields must be non-negative")
		}
		reg.Objective = slo.Objective{
			WithinPctOfOptimal: o.WithinPctOfOptimal,
			DeadlineS:          o.DeadlineS,
			BudgetUSDPerRun:    o.BudgetUSDPerRun,
		}
		reg.TuningBudgetUSD = o.TuningBudgetUSD
	}
	return reg, nil
}

// tuneResponse reports what the pipeline chose and achieved.
type tuneResponse struct {
	Cluster         string           `json:"cluster"`
	Config          confspace.Config `json:"config"`
	DefaultRuntimeS float64          `json:"defaultRuntimeS"`
	TunedRuntimeS   float64          `json:"tunedRuntimeS"`
	ImprovementPct  float64          `json:"improvementPct"`
	TuningCostUSD   float64          `json:"tuningCostUSD"`
	WarmStarted     bool             `json:"warmStarted"`
	WarmSource      string           `json:"warmSource,omitempty"`
	Surrogate       string           `json:"surrogate,omitempty"`
	// Pruning echoes whether stage 2 ran with config-space pruning;
	// ActiveDims/TotalDims report the final search dimension and
	// PrunedKnobs the knobs pinned at session end.
	Pruning     bool     `json:"pruning,omitempty"`
	ActiveDims  int      `json:"activeDims,omitempty"`
	TotalDims   int      `json:"totalDims,omitempty"`
	PrunedKnobs []string `json:"prunedKnobs,omitempty"`
}

func toTuneResponse(res core.PipelineResult) tuneResponse {
	resp := tuneResponse{
		Cluster:         res.Cloud.Cluster.String(),
		Config:          res.DISC.Config,
		DefaultRuntimeS: res.DefaultRuntimeS,
		TunedRuntimeS:   res.TunedRuntimeS,
		ImprovementPct:  res.Improvement() * 100,
		TuningCostUSD:   res.TuningCostUSD,
		WarmStarted:     res.DISC.WarmStarted,
		Surrogate:       res.Surrogate,
		Pruning:         res.Pruning,
		ActiveDims:      res.DISC.ActiveDims,
		TotalDims:       res.DISC.TotalDims,
		PrunedKnobs:     res.DISC.PrunedKnobs,
	}
	if res.DISC.WarmStarted {
		resp.WarmSource = res.DISC.Source.String()
	}
	return resp
}

// submit validates a tune request and enqueues the pipeline as a job.
func (s *server) submit(w http.ResponseWriter, r *http.Request) (jobs.Job, bool) {
	var req tuneRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "bad request body: %v", err)
		return jobs.Job{}, false
	}
	reg, err := req.registration()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return jobs.Job{}, false
	}
	// Each job tunes under its own trace ID so GET /v1/jobs/{id}/trace
	// can slice this job's spans out of the shared ring buffer, and under
	// an emitter keyed by its job ID so GET /v1/jobs/{id}/events can
	// filter the shared event stream. The job ID is only known after
	// Submit returns, so the task blocks on idCh for it (buffered: the
	// send below never blocks, and a task the engine discards unstarted
	// leaks nothing).
	tid := s.tracer.NewTraceID()
	idCh := make(chan string, 1)
	// Resolve the surrogate now so the job record reflects the backend
	// the session will actually fit, not just what the request asked for.
	resolved := reg.Surrogate
	if resolved == "" {
		resolved = s.svc.Surrogate()
	}
	pruning := reg.Pruning || s.svc.Pruning()
	job, err := s.engine.SubmitOpts(reg.Tenant, func(ctx context.Context) (any, error) {
		ctx = obs.NewContext(ctx, obs.Trace{T: s.tracer, ID: tid})
		ctx = obs.NewEmitterContext(ctx, obs.Emitter{
			Log:      s.events,
			Session:  <-idCh,
			Tenant:   reg.Tenant,
			Workload: reg.Workload.Name(),
		})
		res, err := s.svc.TunePipeline(ctx, reg)
		if err != nil {
			return nil, err
		}
		return toTuneResponse(res), nil
	}, jobs.Options{Surrogate: resolved, Pruning: pruning, Diagnostics: s.svc.Diagnostics()})
	if err != nil {
		code, status := "internal", http.StatusInternalServerError
		switch err {
		case jobs.ErrQueueFull:
			code, status = "queue_full", http.StatusTooManyRequests
		case jobs.ErrBackpressure:
			// The persistence tier is saturated: shed with a retry hint
			// instead of queueing work whose results cannot be made
			// durable at the current rate.
			code, status = "storage_backpressure", http.StatusTooManyRequests
			_, retry := s.engine.Backpressure()
			if retry <= 0 {
				retry = time.Second
			}
			w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		}
		writeError(w, status, code, "%v", err)
		return jobs.Job{}, false
	}
	idCh <- job.ID
	s.traceMu.Lock()
	s.traces[job.ID] = tid
	s.traceMu.Unlock()
	return job, true
}

// handleSubmitJob enqueues a tuning pipeline and returns the job
// immediately — the asynchronous face of the service.
func (s *server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.List())
}

// handleTune is the backward-compatible synchronous wrapper: it enqueues
// a job like POST /v1/jobs and waits for the result, so one tenant's
// synchronous calls still serialize behind the tenant's queue while
// distinct tenants tune in parallel.
func (s *server) handleTune(w http.ResponseWriter, r *http.Request) {
	job, ok := s.submit(w, r)
	if !ok {
		return
	}
	final, err := s.engine.Wait(r.Context(), job.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "waiting for job %s: %v", job.ID, err)
		return
	}
	if final.State == jobs.StateFailed {
		writeError(w, http.StatusInternalServerError, "tuning_failed", "%s", final.Error)
		return
	}
	writeJSON(w, http.StatusOK, final.Result)
}

func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Store().Workloads())
}

func (s *server) handleHistory(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "bad limit %q", v)
			return
		}
		limit = n
	}
	recs := s.svc.Store().Query(history.Filter{
		Tenant:   r.URL.Query().Get("tenant"),
		Workload: r.URL.Query().Get("workload"),
		MaxN:     limit,
	})
	writeJSON(w, http.StatusOK, recs)
}

func (s *server) handleEffectiveness(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	wl := r.URL.Query().Get("workload")
	if tenant == "" || wl == "" {
		writeError(w, http.StatusBadRequest, "invalid_argument", "tenant and workload are required")
		return
	}
	rep, err := s.svc.Effectiveness(tenant, wl)
	if err != nil {
		writeError(w, http.StatusNotFound, "not_found", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// errorEnvelope is the uniform error shape of the API.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already written; all we can do is log.
		log.Printf("tuneserve: encoding response: %v", err)
	}
}
