package main

import (
	"net/http"
	"strconv"
	"time"

	"seamlesstune/internal/obs"
)

// HTTP-layer metrics. The route label is the registered mux pattern (e.g.
// "GET /v1/jobs/{id}"), never the raw path, so the label set stays
// bounded; requests matching no pattern share the "unmatched" label.
var (
	mHTTPRequests = obs.Default().CounterVec("http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"route", "status")
	mHTTPSeconds = obs.Default().HistogramVecSketched("http_request_seconds",
		"HTTP request latency, by route pattern.",
		obs.ExpBuckets(1e-4, 4, 12), "route")
	mHTTPInflight = obs.Default().Gauge("http_inflight_requests",
		"HTTP requests currently being served.")
)

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers (the SSE endpoints) can reach Flush through the
// metrics middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// probeWriter is a throwaway ResponseWriter: running the mux's fallback
// handler against it reveals the status (404 vs 405) and the Allow header
// the mux would have written, without touching the real response.
type probeWriter struct {
	header http.Header
	status int
}

func (w *probeWriter) Header() http.Header { return w.header }

func (w *probeWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

func (w *probeWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(b), nil
}

// ServeHTTP implements http.Handler: the metrics middleware around the
// route mux. Requests matching no registered pattern get the API's JSON
// error envelope instead of the mux's plain-text 404/405 defaults.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	handler, pattern := s.mux.Handler(r)
	route := pattern
	if route == "" {
		route = "unmatched"
	}
	mHTTPInflight.Add(1)
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	if pattern == "" {
		s.serveUnmatched(sw, r, handler)
	} else {
		s.mux.ServeHTTP(sw, r)
	}
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	mHTTPSeconds.With(route).Observe(time.Since(start).Seconds())
	mHTTPRequests.With(route, strconv.Itoa(sw.status)).Inc()
	mHTTPInflight.Add(-1)
}

// serveUnmatched converts the mux's fallback response (404 for unknown
// paths, 405 with an Allow header for known paths with the wrong method)
// into the API's JSON error envelope.
func (s *server) serveUnmatched(w http.ResponseWriter, r *http.Request, fallback http.Handler) {
	probe := &probeWriter{header: make(http.Header)}
	fallback.ServeHTTP(probe, r)
	switch probe.status {
	case http.StatusMethodNotAllowed:
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"method %s not allowed for %s", r.Method, r.URL.Path)
	default:
		writeError(w, http.StatusNotFound, "not_found", "no route for %s %s", r.Method, r.URL.Path)
	}
}

// handleMetrics serves the process-wide metrics snapshot: Prometheus text
// exposition by default, the JSON mirror with ?format=json.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := obs.Default().Gather()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.WritePrometheus(w)
}

// handleJobTrace serves the tuning trace of one job as Chrome trace_event
// JSON (load it at chrome://tracing or https://ui.perfetto.dev). Spans may
// have aged out of the ring buffer for old jobs; the trace is then empty
// or partial, never an error.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.engine.Get(id); !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	s.traceMu.Lock()
	tid, ok := s.traces[id]
	s.traceMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no trace recorded for job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTrace(w, s.tracer.Spans(tid))
}
