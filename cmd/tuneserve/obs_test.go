package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsEndpoint drives one tuning pipeline through the API and
// checks that /metrics exposes populated families from every layer of the
// stack: HTTP, job engine, service, tuner, GP substrate, and simulator.
func TestMetricsEndpoint(t *testing.T) {
	s := testServer(t)
	body := `{"tenant":"acme","workload":"wordcount","inputGB":8}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /v1/tune status = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := rec.Body.String()
	families := []string{
		// HTTP layer
		"http_requests_total", "http_request_seconds", "http_inflight_requests",
		// job engine
		"jobs_submitted_total", "jobs_finished_total", "jobs_workers",
		"jobs_wait_seconds", "jobs_run_seconds",
		// service pipeline
		"core_executions_total", "core_pipeline_seconds", "core_phase_seconds",
		// tuner + GP substrate
		"tuner_sessions_total", "tuner_trials_total", "tuner_acq_seconds",
		"gp_fit_seconds", "gp_predict_seconds",
		// simulator
		"spark_runs_total", "spark_stages_total", "spark_tasks_total",
	}
	for _, f := range families {
		if !strings.Contains(text, "# TYPE "+f+" ") {
			t.Errorf("/metrics missing family %s", f)
		}
	}
	if !strings.Contains(text, `http_requests_total{route="POST /v1/tune",status="200"}`) {
		t.Errorf("per-route counter missing or wrong:\n%s", grepLines(text, "http_requests_total"))
	}

	// The JSON mirror must be machine-decodable and carry the same names.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics?format=json status = %d", rec.Code)
	}
	var payload struct {
		Families []struct {
			Name string `json:"name"`
		} `json:"families"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("JSON metrics do not decode: %v", err)
	}
	names := make(map[string]bool, len(payload.Families))
	for _, f := range payload.Families {
		names[f.Name] = true
	}
	for _, f := range families {
		if !names[f] {
			t.Errorf("JSON metrics missing family %s", f)
		}
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestUnmatchedRoutesGetJSONEnvelope checks that the mux's plain-text
// fallbacks are replaced by the API's uniform error envelope.
func TestUnmatchedRoutesGetJSONEnvelope(t *testing.T) {
	s := testServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/no/such/route", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("404 body is not the JSON envelope: %v: %s", err, rec.Body.String())
	}
	if env.Error.Code != "not_found" {
		t.Errorf("code = %q", env.Error.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Errorf("Allow = %q, want GET advertised", allow)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("405 body is not the JSON envelope: %v: %s", err, rec.Body.String())
	}
	if env.Error.Code != "method_not_allowed" {
		t.Errorf("code = %q", env.Error.Code)
	}
}

// TestHealthzReadiness checks the extended readiness payload.
func TestHealthzReadiness(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var hr healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q", hr.Status)
	}
	if hr.UptimeS < 0 {
		t.Errorf("uptimeS = %v", hr.UptimeS)
	}
	if hr.Engine.Workers != 2 {
		t.Errorf("engine.workers = %d, want 2", hr.Engine.Workers)
	}
	if hr.GoVersion == "" {
		t.Errorf("goVersion missing")
	}
}

// TestJobTraceEndpoint checks that a finished job's trace comes back as
// Chrome trace_event JSON with spans from the tuner and simulator layers.
func TestJobTraceEndpoint(t *testing.T) {
	s := testServer(t)
	body := `{"tenant":"acme","workload":"wordcount","inputGB":8}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status = %d: %s", rec.Code, rec.Body.String())
	}
	var job jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, s, job.ID)

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+job.ID+"/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET trace status = %d: %s", rec.Code, rec.Body.String())
	}
	var tr struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Cat   string  `json:"cat"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := make(map[string]bool)
	for _, ev := range tr.TraceEvents {
		cats[ev.Cat] = true
	}
	for _, want := range []string{"core", "tuner", "spark"} {
		if !cats[want] {
			t.Errorf("trace has no %q spans (got %v)", want, cats)
		}
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-999999/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing-job trace status = %d", rec.Code)
	}
}

// TestMetricsJSONQuantiles: sketched histogram families (HTTP latency,
// tuner timings) must expose p50/p90/p99 in the JSON exposition, and the
// Prometheus text form must stay quantile-free (fixed buckets only).
func TestMetricsJSONQuantiles(t *testing.T) {
	s := testServer(t)
	// Two requests: the middleware observes latency after the handler
	// returns, so the second gather sees the first request's sample.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Families []struct {
			Name   string `json:"name"`
			Series []struct {
				Quantiles map[string]float64 `json:"quantiles"`
			} `json:"series"`
		} `json:"families"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range snap.Families {
		if f.Name != "http_request_seconds" {
			continue
		}
		for _, se := range f.Series {
			if len(se.Quantiles) == 0 {
				continue
			}
			found = true
			for _, q := range []string{"p50", "p90", "p99"} {
				if _, ok := se.Quantiles[q]; !ok {
					t.Errorf("http_request_seconds quantiles missing %s: %v", q, se.Quantiles)
				}
			}
			if se.Quantiles["p50"] > se.Quantiles["p99"] {
				t.Errorf("p50 %v > p99 %v", se.Quantiles["p50"], se.Quantiles["p99"])
			}
		}
	}
	if !found {
		t.Fatal("no http_request_seconds series carries quantiles")
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rec.Body.String(), "quantile") {
		t.Error("Prometheus text exposition leaked quantiles")
	}
}
