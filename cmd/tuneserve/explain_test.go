package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seamlesstune/internal/jobs"
	"seamlesstune/internal/obs"
)

// The pure fold: synthetic events in, explain document out.
func TestExplainJobFold(t *testing.T) {
	job := jobs.Job{ID: "job-1", State: jobs.StateDone, Surrogate: "gp", Diagnostics: true}
	events := []obs.Event{
		// Another job's events must not leak in.
		{Seq: 1, Type: obs.EventTrial, Session: "job-2", Phase: "cloud", Trial: 1, BestSoFar: 50},
		{Seq: 2, Type: obs.EventSessionStart, Session: "job-1"},
		{Seq: 3, Type: obs.EventDecide, Session: "job-1", Phase: "cloud", Trial: 1,
			EI: 0.2, EIExploit: 0.15, EIExplore: 0.05},
		{Seq: 4, Type: obs.EventTrial, Session: "job-1", Phase: "cloud", Trial: 1,
			RuntimeS: 100, BestSoFar: 100},
		{Seq: 5, Type: obs.EventDecide, Session: "job-1", Phase: "cloud", Trial: 2,
			EI: 0.05, EIExploit: 0.01, EIExplore: 0.04},
		// Worse than the incumbent: plateau grows.
		{Seq: 6, Type: obs.EventTrial, Session: "job-1", Phase: "cloud", Trial: 2,
			RuntimeS: 120, BestSoFar: 100, RegretS: 20},
		{Seq: 7, Type: obs.EventTrial, Session: "job-1", Phase: "cloud", Trial: 3, Failed: true},
		{Seq: 8, Type: obs.EventModelHealth, Session: "job-1", Phase: "cloud", Trial: 3,
			Scores: 6, Coverage1: 0.5, Coverage2: 0.8, RMSE: 0.3, NLPD: 0.1,
			Severity: "warn", Detail: "surrogate overconfident"},
		{Seq: 9, Type: obs.EventStall, Session: "job-1", Phase: "cloud", Trial: 3,
			Plateau: 8, EIDecay: 0.02, Severity: "warn", Detail: "no improvement for 8 trials"},
		// A second phase with an improving trial.
		{Seq: 10, Type: obs.EventDecide, Session: "job-1", Phase: "disc", Trial: 4, EI: 0.4,
			EIExploit: 0.1, EIExplore: 0.3},
		{Seq: 11, Type: obs.EventTrial, Session: "job-1", Phase: "disc", Trial: 4,
			RuntimeS: 80, BestSoFar: 80},
	}
	resp := explainJob(job, events)
	if resp.Job != "job-1" || resp.State != "done" || !resp.Diagnostics || resp.Surrogate != "gp" {
		t.Fatalf("header wrong: %+v", resp)
	}
	if resp.Events != 10 {
		t.Errorf("folded %d events, want 10 (job-2's must be excluded)", resp.Events)
	}
	if len(resp.Phases) != 2 || resp.Phases[0].Phase != "cloud" || resp.Phases[1].Phase != "disc" {
		t.Fatalf("phases = %+v, want [cloud disc] in first-seen order", resp.Phases)
	}
	cl := resp.Phases[0]
	if cl.Trials != 3 || cl.Failed != 1 {
		t.Errorf("cloud trials/failed = %d/%d, want 3/1", cl.Trials, cl.Failed)
	}
	if cl.BestSoFar != 100 {
		t.Errorf("cloud best = %g, want 100", cl.BestSoFar)
	}
	if cl.Plateau != 1 {
		t.Errorf("cloud plateau = %d, want 1 (one non-improving success after the incumbent)", cl.Plateau)
	}
	if cl.Decisions != 2 || cl.LastEI != 0.05 || cl.PeakEI != 0.2 {
		t.Errorf("cloud EI trace = %+v, want 2 decisions, last 0.05, peak 0.2", cl)
	}
	if want := 0.05 / 0.2; cl.EIDecay != want {
		t.Errorf("cloud eiDecay = %g, want %g", cl.EIDecay, want)
	}
	exploit, explore := 0.01, 0.04
	if want := exploit / (exploit + explore); cl.ExploitShare != want {
		t.Errorf("cloud exploitShare = %g, want %g", cl.ExploitShare, want)
	}
	if cl.Calibration == nil || cl.Calibration.Severity != "warn" || cl.Calibration.Scores != 6 {
		t.Errorf("cloud calibration = %+v", cl.Calibration)
	}
	if cl.Stall == nil || cl.Stall.Plateau != 8 || cl.Stall.Severity != "warn" {
		t.Errorf("cloud stall = %+v", cl.Stall)
	}
	disc := resp.Phases[1]
	if disc.Trials != 1 || disc.Plateau != 0 || disc.Decisions != 1 || disc.EIDecay != 1 {
		t.Errorf("disc phase = %+v", disc)
	}
	if disc.Calibration != nil || disc.Stall != nil {
		t.Errorf("disc verdicts should be absent before the diagnostics speak: %+v", disc)
	}
}

func TestExplainEndpointEndToEnd(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var jv jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, s, jv.ID)

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+jv.ID+"/explain", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("explain status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Job != jv.ID || resp.State != "done" || !resp.Diagnostics {
		t.Fatalf("explain header = %+v", resp)
	}
	if len(resp.Phases) == 0 || resp.Events == 0 {
		t.Fatalf("explain carries no telemetry: %+v", resp)
	}
	var sawDecisions, sawCalibration bool
	for _, p := range resp.Phases {
		if p.Decisions > 0 {
			sawDecisions = true
			if p.PeakEI < p.LastEI {
				t.Errorf("phase %s: peak EI %g below last %g", p.Phase, p.PeakEI, p.LastEI)
			}
		}
		if p.Calibration != nil {
			sawCalibration = true
			if p.Calibration.Severity == "" {
				t.Errorf("phase %s: calibration without severity", p.Phase)
			}
		}
	}
	if !sawDecisions {
		t.Error("no phase carries decisions")
	}
	if !sawCalibration {
		t.Error("no phase carries a calibration verdict")
	}

	// Unknown jobs 404 with the error envelope.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-999999/explain", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job explain status = %d", rec.Code)
	}
}

// With diagnostics disabled server-wide, explain still answers but says
// so, and carries no decide-derived content.
func TestExplainWithDiagnosticsDisabled(t *testing.T) {
	s, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10,
		Workers: 2, DisableDiagnostics: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	var jv jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, s, jv.ID)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+jv.ID+"/explain", nil))
	var resp explainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Diagnostics {
		t.Error("job should echo diagnostics disabled")
	}
	for _, p := range resp.Phases {
		if p.Decisions != 0 || p.Calibration != nil || p.Stall != nil {
			t.Errorf("diagnostics content with diagnostics off: %+v", p)
		}
	}
}
