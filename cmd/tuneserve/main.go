// Command tuneserve exposes the seamless-tuning service over HTTP — a
// demonstration of the paper's vision of configuration tuning offered as
// a cloud service: tenants submit workloads and high-level objectives,
// the provider runs both tuning stages and keeps the cross-tenant
// execution history. Tuning runs on a bounded worker pool: each tenant's
// submissions execute in FIFO order, distinct tenants tune in parallel.
//
// Endpoints (all errors arrive as {"error":{"code","message"}}):
//
//	POST /v1/jobs            {"tenant","workload","inputGB"[,"objective"][,"surrogate"][,"pruning"]} → 202 + job; poll for the result
//	GET  /v1/jobs/{id}       job state: queued|running|done|failed (+ result payload)
//	GET  /v1/jobs            all jobs in submission order
//	POST /v1/tune            synchronous wrapper: enqueues and waits for the pipeline result
//	GET  /v1/jobs/{id}/trace the job's tuning trace as Chrome trace_event JSON
//	GET  /v1/jobs/{id}/events the job's telemetry stream as SSE (?from= or Last-Event-ID to replay)
//	GET  /v1/jobs/{id}/explain the tuner's decision process: per-phase EI trace, surrogate calibration, stall verdicts
//	GET  /v1/events          the server-wide telemetry stream as SSE
//	GET  /v1/tenants/{id}/usage one tenant's accrued trials/spend/attainment
//	GET  /v1/usage           every tenant's accounting
//	GET  /dashboard          zero-dependency live HTML dashboard over the event stream
//	GET  /v1/workloads       registered (tenant, workload) pairs
//	GET  /v1/history         ?tenant=&workload=&limit=
//	GET  /v1/effectiveness   ?tenant=&workload=
//	GET  /v1/query           ?metric=&from=&to=&step= range query over the embedded telemetry time-series store
//	GET  /v1/alerts          every alert rule's lifecycle state (firing first)
//	GET  /healthz            readiness: uptime, build info, worker-pool and event-bus occupancy
//	GET  /metrics            Prometheus text exposition (?format=json for the JSON mirror with sketch quantiles)
//
// Usage:
//
//	tuneserve -addr :8642 -seed 1 -workers 4 [-debug-addr :8643]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"seamlesstune/internal/core"
)

func main() {
	fs := flag.NewFlagSet("tuneserve", flag.ExitOnError)
	addr := fs.String("addr", ":8642", "listen address")
	debugAddr := fs.String("debug-addr", "", "optional listen address for net/http/pprof profiling endpoints (kept off the API port)")
	seed := fs.Int64("seed", 1, "simulation seed")
	params := fs.Int("params", 12, "Spark parameters tuned per session (1-41)")
	cloudBudget := fs.Int("cloud-budget", 10, "stage-1 execution budget")
	discBudget := fs.Int("disc-budget", 25, "stage-2 execution budget")
	workers := fs.Int("workers", 4, "tuning worker pool size (concurrent pipelines)")
	maxQueued := fs.Int("max-queued", 0, "max unfinished jobs admitted at once (0 = unbounded)")
	transferThreshold := fs.Float64("transfer-threshold", 0,
		"similarity gate for cross-workload warm-starting (0 = default; >1 disables transfer for strict replayability)")
	statePath := fs.String("state", "", "path for persisting the execution history as a JSON snapshot (load on start, save asynchronously; selects the snapshot backend)")
	dataDir := fs.String("data-dir", "", "directory for the write-ahead log (selects the wal backend: O(1) durable appends, group commit, compaction, crash recovery)")
	backendName := fs.String("backend", "", "persistence backend: wal, snapshot, or memory (default: inferred from -data-dir / -state)")
	fsyncInterval := fs.Duration("fsync-interval", 0, "WAL group-commit window: how long concurrent appends coalesce before one fsync (0 = 2ms)")
	segmentBytes := fs.Int64("segment-bytes", 0, "WAL segment roll threshold in bytes (0 = 8 MiB)")
	compactSegments := fs.Int("compact-segments", 0, "sealed WAL segments that trigger a background compaction (0 = 4; negative disables)")
	simCache := fs.Bool("simcache", true, "memoize simulator executions across tenants (bit-identical results, content-derived seeds)")
	simCacheCap := fs.Int("simcache-capacity", 0, "evaluation cache entry bound (0 = default)")
	eventsCap := fs.Int("events-capacity", 0, "telemetry event ring capacity (0 = default)")
	eventsOut := fs.String("events-out", "", "path to flush the telemetry event ring to as JSONL on shutdown")
	telemetryInterval := fs.Duration("telemetry-interval", time.Second, "metrics sampling period of the embedded time-series store (raw tier resolution)")
	telemetryRetention := fs.Duration("telemetry-retention", 24*time.Hour, "how far back the coarsest telemetry rollup tier retains history")
	alertRules := fs.String("alert-rules", "", "path to a JSON alert rules file (empty = built-in defaults: telemetry loss, fsync latency, queue backlog, SLO burn rate)")
	surrogateKind := fs.String("surrogate", "", "default surrogate model for BayesOpt sessions: gp (exact, default), rffgp, or forest; per-request \"surrogate\" overrides")
	prune := fs.Bool("prune", false, "enable significance-aware config-space pruning for every stage-2 session (per-request \"pruning\" opts in individually)")
	diagnostics := fs.Bool("diagnostics", true, "publish tuner explainability diagnostics (decide/model_health/stall events, /v1/jobs/{id}/explain); trajectories are identical either way")
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	srv, err := newServer(serverConfig{
		Seed:               *seed,
		Params:             *params,
		CloudBudget:        *cloudBudget,
		DISCBudget:         *discBudget,
		Workers:            *workers,
		MaxQueued:          *maxQueued,
		TransferThreshold:  *transferThreshold,
		StatePath:          *statePath,
		DataDir:            *dataDir,
		Backend:            *backendName,
		FsyncInterval:      *fsyncInterval,
		SegmentBytes:       *segmentBytes,
		CompactSegments:    *compactSegments,
		SimCache:           *simCache,
		SimCacheCapacity:   *simCacheCap,
		EventsCapacity:     *eventsCap,
		EventsPath:         *eventsOut,
		TelemetryInterval:  *telemetryInterval,
		TelemetryRetention: *telemetryRetention,
		AlertRules:         *alertRules,
		Surrogate:          *surrogateKind,
		Pruning:            *prune,
		DisableDiagnostics: !*diagnostics,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *debugAddr != "" {
		// Profiling lives on its own listener so it is never exposed on
		// the tenant-facing port, and only when explicitly asked for.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("tuneserve pprof listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("tuneserve: pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("tuneserve listening on %s (seed %d, %d params, %d workers)", *addr, *seed, *params, *workers)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Drain the worker pool and flush unsaved history before exiting.
	srv.Close()
}

// serverConfig bundles the tunables of newServer so main and tests share
// one construction path.
type serverConfig struct {
	Seed        int64
	Params      int
	CloudBudget int
	DISCBudget  int
	// Workers sizes the tuning worker pool (minimum 1).
	Workers int
	// MaxQueued bounds the number of unfinished jobs admitted at once
	// (0 = unbounded); when full, submissions get 429 queue_full.
	MaxQueued int
	// TransferThreshold gates cross-workload warm-starting (0 = default;
	// above 1 disables transfer, making results independent of how
	// concurrent sessions interleave).
	TransferThreshold float64
	// StatePath, when set, persists the execution history as a whole-store
	// JSON snapshot: loaded at startup (if present) and saved
	// asynchronously as records land (the snapshot backend).
	StatePath string
	// DataDir, when set, persists history and events through the
	// segmented write-ahead log (the wal backend).
	DataDir string
	// Backend forces a persistence backend ("wal", "snapshot", "memory");
	// empty infers one from DataDir/StatePath/EventsPath.
	Backend string
	// FsyncInterval bounds the WAL group-commit window (0 = 2ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment roll threshold (0 = 8 MiB).
	SegmentBytes int64
	// CompactSegments is the sealed-segment count that triggers background
	// WAL compaction (0 = 4; negative disables).
	CompactSegments int
	// SimCache enables the cross-tenant simulator evaluation cache
	// (content-derived execution seeds; see core.WithSimCache).
	SimCache bool
	// SimCacheCapacity bounds the cache's entry count (0 = default).
	SimCacheCapacity int
	// EventsCapacity sizes the telemetry event ring (0 = default).
	EventsCapacity int
	// EventsPath, when set, flushes the event ring to a JSONL file on
	// shutdown, so a session's telemetry survives the process.
	EventsPath string
	// TelemetryInterval is the embedded time-series store's sampling
	// period (0 = 1s); TelemetryRetention bounds its coarsest rollup
	// tier's history (0 = 24h).
	TelemetryInterval  time.Duration
	TelemetryRetention time.Duration
	// AlertRules names a JSON alert rules file ("" = built-in defaults).
	AlertRules string
	// Surrogate sets the server-wide default model backend for BayesOpt
	// sessions ("" = exact gp); individual requests may override it.
	Surrogate string
	// Pruning turns on significance-aware config-space pruning for every
	// stage-2 session (default off; individual requests opt in with
	// "pruning": true).
	Pruning bool
	// DisableDiagnostics silences the tuner explainability diagnostics —
	// decide, model_health, and stall events and the per-phase content of
	// /v1/jobs/{id}/explain. The zero value keeps them on, matching the
	// core default (-diagnostics=false sets this).
	DisableDiagnostics bool
}

func (c serverConfig) options() []core.Option {
	opts := []core.Option{
		core.WithSeed(c.Seed),
		core.WithBudgets(c.CloudBudget, c.DISCBudget),
		core.WithTransferThreshold(c.TransferThreshold),
	}
	if c.Surrogate != "" {
		opts = append(opts, core.WithSurrogate(c.Surrogate))
	}
	if c.Pruning {
		opts = append(opts, core.WithPruning(true))
	}
	if c.DisableDiagnostics {
		opts = append(opts, core.WithDiagnostics(false))
	}
	return opts
}
