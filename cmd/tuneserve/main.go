// Command tuneserve exposes the seamless-tuning service over HTTP — a
// demonstration of the paper's vision of configuration tuning offered as
// a cloud service: tenants submit workloads and high-level objectives,
// the provider runs both tuning stages and keeps the cross-tenant
// execution history.
//
// Endpoints:
//
//	POST /v1/tune            {"tenant","workload","inputGB"} → pipeline result
//	GET  /v1/workloads       registered (tenant, workload) pairs
//	GET  /v1/history         ?tenant=&workload=&limit=
//	GET  /v1/effectiveness   ?tenant=&workload=
//	GET  /healthz
//
// Usage:
//
//	tuneserve -addr :8642 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"seamlesstune/internal/core"
)

func main() {
	fs := flag.NewFlagSet("tuneserve", flag.ExitOnError)
	addr := fs.String("addr", ":8642", "listen address")
	seed := fs.Int64("seed", 1, "simulation seed")
	params := fs.Int("params", 12, "Spark parameters tuned per session (1-41)")
	cloudBudget := fs.Int("cloud-budget", 10, "stage-1 execution budget")
	discBudget := fs.Int("disc-budget", 25, "stage-2 execution budget")
	statePath := fs.String("state", "", "path for persisting the execution history (load on start, save after each tune)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	srv, err := newServer(serverConfig{
		Seed:        *seed,
		Params:      *params,
		CloudBudget: *cloudBudget,
		DISCBudget:  *discBudget,
		StatePath:   *statePath,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tuneserve listening on %s (seed %d, %d params)", *addr, *seed, *params)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// serverConfig bundles the tunables of newServer so main and tests share
// one construction path.
type serverConfig struct {
	Seed        int64
	Params      int
	CloudBudget int
	DISCBudget  int
	// StatePath, when set, persists the execution history: loaded at
	// startup (if present) and saved after every tuning request.
	StatePath string
}

func (c serverConfig) options() []core.Option {
	return []core.Option{
		core.WithSeed(c.Seed),
		core.WithBudgets(c.CloudBudget, c.DISCBudget),
	}
}

func usageError(w http.ResponseWriter, format string, args ...interface{}) {
	http.Error(w, fmt.Sprintf(format, args...), http.StatusBadRequest)
}
