package main

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"seamlesstune/internal/telemetry"
)

// handleQuery serves GET /v1/query?metric=&from=&to=&step= — range
// queries over the embedded time-series store. Times are unix seconds
// (integer or fractional) or RFC3339; from defaults to 15 minutes ago,
// to defaults to now. step is a Go duration ("10s", "1m"; default picks
// ~240 points across the range). Any other query parameter is an exact
// label matcher (e.g. &route=/v1/jobs).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeError(w, http.StatusBadRequest, "invalid_argument",
			"metric is required (known: %s)", strings.Join(s.telemetry.Metrics(), ", "))
		return
	}
	now := time.Now()
	to, err := parseQueryTime(q.Get("to"), now)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "bad to: %v", err)
		return
	}
	from, err := parseQueryTime(q.Get("from"), to.Add(-15*time.Minute))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_argument", "bad from: %v", err)
		return
	}
	if !to.After(from) {
		writeError(w, http.StatusBadRequest, "invalid_argument", "from must precede to")
		return
	}
	step := to.Sub(from) / 240
	if v := q.Get("step"); v != "" {
		if step, err = time.ParseDuration(v); err != nil || step <= 0 {
			writeError(w, http.StatusBadRequest, "invalid_argument", "bad step %q", v)
			return
		}
	}
	if step < s.telemetry.Interval() {
		step = s.telemetry.Interval()
	}
	match := map[string]string{}
	for k, vs := range q {
		switch k {
		case "metric", "from", "to", "step":
		default:
			if len(vs) > 0 {
				match[k] = vs[0]
			}
		}
	}
	series := s.telemetry.Query(metric, match, from, to, step)
	if series == nil {
		series = []telemetry.SeriesResult{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Metric: metric,
		FromNS: from.UnixNano(),
		ToNS:   to.UnixNano(),
		StepS:  step.Seconds(),
		Series: series,
	})
}

// queryResponse frames a range-query result with its resolved window.
type queryResponse struct {
	Metric string                   `json:"metric"`
	FromNS int64                    `json:"fromNS"`
	ToNS   int64                    `json:"toNS"`
	StepS  float64                  `json:"stepS"`
	Series []telemetry.SeriesResult `json:"series"`
}

// parseQueryTime accepts unix seconds (integer or fractional) or
// RFC3339; empty yields the default.
func parseQueryTime(v string, def time.Time) (time.Time, error) {
	if v == "" {
		return def, nil
	}
	if sec, err := strconv.ParseFloat(v, 64); err == nil {
		return time.Unix(0, int64(sec*float64(time.Second))), nil
	}
	return time.Parse(time.RFC3339, v)
}

// alertsResponse frames GET /v1/alerts.
type alertsResponse struct {
	Firing int                     `json:"firing"`
	Alerts []telemetry.AlertStatus `json:"alerts"`
}

// handleAlerts reports every alert rule's lifecycle state, firing rules
// first.
func (s *server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, alertsResponse{
		Firing: s.alerts.Firing(),
		Alerts: s.alerts.Alerts(),
	})
}
