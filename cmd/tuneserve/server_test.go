package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestTuneEndToEnd(t *testing.T) {
	s := testServer(t)
	body := `{"tenant":"acme","workload":"wordcount","inputGB":4}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp tuneResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TunedRuntimeS <= 0 || resp.Cluster == "" || len(resp.Config) == 0 {
		t.Errorf("degenerate response: %+v", resp)
	}

	// History now has records for the tenant.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/history?tenant=acme&limit=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("history status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "wordcount") {
		t.Error("history missing workload records")
	}

	// Workloads lists the pair.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if !strings.Contains(rec.Body.String(), "acme") {
		t.Errorf("workloads = %s", rec.Body.String())
	}

	// Effectiveness report exists.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness?tenant=acme&workload=wordcount", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("effectiveness status = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestTuneValidation(t *testing.T) {
	s := testServer(t)
	tests := []struct {
		name string
		body string
	}{
		{"bad json", `{nope`},
		{"unknown workload", `{"tenant":"a","workload":"nope","inputGB":1}`},
		{"no tenant", `{"workload":"wordcount","inputGB":1}`},
		{"bad size", `{"tenant":"a","workload":"wordcount","inputGB":0}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(tt.body)))
			if rec.Code != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", rec.Code)
			}
		})
	}
	// Wrong method.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tune", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tune status = %d", rec.Code)
	}
}

func TestHistoryValidation(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/history?limit=zero", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", rec.Code)
	}
}

func TestEffectivenessValidation(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing params status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness?tenant=ghost&workload=wordcount", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d", rec.Code)
	}
}

func TestStatePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	s, err := newServer(serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// A fresh server restores the history.
	s2, err := newServer(serverConfig{Seed: 2, Params: 8, CloudBudget: 5, DISCBudget: 8, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if !strings.Contains(rec.Body.String(), "acme") {
		t.Errorf("restored server lost history: %s", rec.Body.String())
	}

	// Corrupt state fails loudly.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(serverConfig{StatePath: path}); err == nil {
		t.Error("corrupt state accepted")
	}
}
