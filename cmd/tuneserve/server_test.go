package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seamlesstune/internal/jobs"
)

func testServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// jobView mirrors jobs.Job with the result kept raw so tests can compare
// payload bytes.
type jobView struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	State     jobs.State      `json:"state"`
	Result    json.RawMessage `json:"result"`
	Error     string          `json:"error"`
	StartSeq  int64           `json:"startSeq"`
	FinishSeq int64           `json:"finishSeq"`
}

// awaitJob polls GET /v1/jobs/{id} until the job is terminal.
func awaitJob(t *testing.T, s *server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s status = %d: %s", id, rec.Code, rec.Body.String())
		}
		var jv jobView
		if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
			t.Fatal(err)
		}
		if jv.State.Terminal() {
			return jv
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobView{}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("body = %s", rec.Body.String())
	}
}

// With the evaluation cache enabled, /healthz must surface hit/miss
// stats once tuning traffic has flowed, and /metrics must expose the
// simcache counter families.
func TestHealthzReportsSimCache(t *testing.T) {
	s, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 5, DISCBudget: 8, Workers: 2, SimCache: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	rec := httptest.NewRecorder()
	body := `{"tenant":"acme","workload":"wordcount","inputGB":2}`
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Engine jobs.Stats `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Engine.Cache == nil {
		t.Fatalf("healthz engine stats missing cache: %s", rec.Body.String())
	}
	if health.Engine.Cache.Misses == 0 {
		t.Errorf("expected cache misses after tuning, got %+v", *health.Engine.Cache)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "simcache_misses_total") {
		t.Error("/metrics missing simcache counter families")
	}
}

func TestTuneEndToEnd(t *testing.T) {
	s := testServer(t)
	body := `{"tenant":"acme","workload":"wordcount","inputGB":4}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp tuneResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TunedRuntimeS <= 0 || resp.Cluster == "" || len(resp.Config) == 0 {
		t.Errorf("degenerate response: %+v", resp)
	}

	// History now has records for the tenant.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/history?tenant=acme&limit=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("history status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "wordcount") {
		t.Error("history missing workload records")
	}

	// Workloads lists the pair.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if !strings.Contains(rec.Body.String(), "acme") {
		t.Errorf("workloads = %s", rec.Body.String())
	}

	// Effectiveness report exists.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness?tenant=acme&workload=wordcount", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("effectiveness status = %d: %s", rec.Code, rec.Body.String())
	}

	// The synchronous tune ran through the job engine, so it shows up in
	// the job listing as done.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("jobs status = %d", rec.Code)
	}
	var list []jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].State != jobs.StateDone {
		t.Errorf("jobs = %+v", list)
	}
}

func TestJobLifecycle(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"sort","inputGB":2}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
	}
	var submitted jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted.ID == "" || submitted.Tenant != "acme" {
		t.Fatalf("submitted job = %+v", submitted)
	}
	if submitted.State != jobs.StateQueued && submitted.State != jobs.StateRunning {
		t.Fatalf("fresh job state = %s", submitted.State)
	}

	final := awaitJob(t, s, submitted.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %+v", final)
	}
	var resp tuneResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TunedRuntimeS <= 0 {
		t.Errorf("degenerate result: %+v", resp)
	}

	// Unknown jobs 404 with the error envelope.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-999999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown job status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"not_found"`) {
		t.Errorf("unknown job body = %s", rec.Body.String())
	}
}

// TestConcurrentJobsMatchSequential is the load test of the redesign:
// 8 submissions across 4 distinct tenants on a 4-worker pool must (a)
// respect per-tenant FIFO, and (b) produce byte-identical results to the
// same submissions on a 1-worker (sequential) pool with the same seed.
// Run with -race to check the engine, store and service under contention.
func TestConcurrentJobsMatchSequential(t *testing.T) {
	submissions := []struct{ tenant, workload string }{
		{"alpha", "wordcount"},
		{"beta", "pagerank"},
		{"gamma", "kmeans"},
		{"delta", "bayes"},
		{"alpha", "wordcount"},
		{"beta", "pagerank"},
		{"gamma", "kmeans"},
		{"delta", "bayes"},
	}

	// run submits everything at once and returns each tenant's result
	// payloads in submission order.
	run := func(workers int) map[string][]string {
		// TransferThreshold > 1 disables cross-workload warm-starting:
		// transfer content depends on which other sessions have already
		// landed in the store, which is exactly the scheduling dependence
		// byte-identity must exclude (see docs/SERVICE.md).
		s, err := newServer(serverConfig{
			Seed: 7, Params: 8, CloudBudget: 5, DISCBudget: 8,
			Workers: workers, TransferThreshold: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var ids []string
		for _, sub := range submissions {
			body := fmt.Sprintf(`{"tenant":%q,"workload":%q,"inputGB":2}`, sub.tenant, sub.workload)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
			if rec.Code != http.StatusAccepted {
				t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
			}
			var jv jobView
			if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, jv.ID)
		}
		results := make(map[string][]string)
		finals := make(map[string]jobView)
		for i, id := range ids {
			final := awaitJob(t, s, id)
			if final.State != jobs.StateDone {
				t.Fatalf("job %s (%s) failed: %s", id, submissions[i].tenant, final.Error)
			}
			results[final.Tenant] = append(results[final.Tenant], string(final.Result))
			finals[id] = final
		}
		// Per-tenant FIFO: on the engine's event clock, each job of a
		// tenant starts strictly after the tenant's previous job finished.
		prev := make(map[string]jobView)
		for _, id := range ids {
			jv := finals[id]
			if p, ok := prev[jv.Tenant]; ok && jv.StartSeq <= p.FinishSeq {
				t.Errorf("tenant %s: job %s started (seq %d) before %s finished (seq %d)",
					jv.Tenant, jv.ID, jv.StartSeq, p.ID, p.FinishSeq)
			}
			prev[jv.Tenant] = jv
		}
		return results
	}

	concurrent := run(4)
	sequential := run(1)
	for tenant, want := range sequential {
		got := concurrent[tenant]
		if len(got) != len(want) {
			t.Fatalf("tenant %s: %d concurrent results vs %d sequential", tenant, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("tenant %s submission %d: concurrent result differs from sequential\nconcurrent: %s\nsequential: %s",
					tenant, i, got[i], want[i])
			}
		}
	}
}

func TestTuneValidation(t *testing.T) {
	s := testServer(t)
	tests := []struct {
		name string
		body string
	}{
		{"bad json", `{nope`},
		{"unknown workload", `{"tenant":"a","workload":"nope","inputGB":1}`},
		{"no tenant", `{"workload":"wordcount","inputGB":1}`},
		{"bad size", `{"tenant":"a","workload":"wordcount","inputGB":0}`},
	}
	for _, path := range []string{"/v1/tune", "/v1/jobs"} {
		for _, tt := range tests {
			t.Run(path+" "+tt.name, func(t *testing.T) {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(tt.body)))
				if rec.Code != http.StatusBadRequest {
					t.Errorf("status = %d, want 400", rec.Code)
				}
				if !strings.Contains(rec.Body.String(), `"invalid_argument"`) {
					t.Errorf("body = %s, want error envelope", rec.Body.String())
				}
			})
		}
	}
	// Wrong method: the method-qualified routes answer 405.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tune", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/tune status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/jobs", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/jobs status = %d", rec.Code)
	}
}

func TestHistoryValidation(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/history?limit=zero", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", rec.Code)
	}
}

func TestEffectivenessValidation(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing params status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/effectiveness?tenant=ghost&workload=wordcount", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d", rec.Code)
	}
}

func TestStatePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	s, err := newServer(serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 2, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}
	// Persistence is asynchronous: the save lands shortly after the job
	// completes, and Close guarantees a final flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("state file not written within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("state file missing after Close: %v", err)
	}

	// A fresh server restores the history.
	s2, err := newServer(serverConfig{Seed: 2, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 2, StatePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if !strings.Contains(rec.Body.String(), "acme") {
		t.Errorf("restored server lost history: %s", rec.Body.String())
	}

	// Corrupt state fails loudly.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(serverConfig{StatePath: path}); err == nil {
		t.Error("corrupt state accepted")
	}
}

// The surrogate option threads end to end: requests select a backend,
// the job record echoes the resolved choice (including the server-wide
// default when the request leaves it blank), the pipeline result reports
// what ran, and unknown names are rejected with the error envelope.
func TestJobSurrogateSelection(t *testing.T) {
	s, err := newServer(serverConfig{
		Seed: 1, Params: 10, CloudBudget: 5, DISCBudget: 8, Workers: 2,
		Surrogate: "rffgp",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	submit := func(body string) jobView {
		t.Helper()
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
		}
		var jv struct {
			jobView
			Surrogate string `json:"surrogate"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
			t.Fatal(err)
		}
		if want := wantSurrogate(body); jv.Surrogate != want {
			t.Fatalf("submitted job surrogate = %q, want %q (body %s)", jv.Surrogate, want, body)
		}
		return jv.jobView
	}

	// Explicit request override beats the server default.
	jv := submit(`{"tenant":"acme","workload":"sort","inputGB":2,"surrogate":"forest"}`)
	final := awaitJob(t, s, jv.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %+v", final)
	}
	var resp tuneResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Surrogate != "forest" {
		t.Errorf("result surrogate = %q, want forest", resp.Surrogate)
	}

	// Blank request resolves to the server-wide default.
	jv = submit(`{"tenant":"acme","workload":"sort","inputGB":2}`)
	final = awaitJob(t, s, jv.ID)
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Surrogate != "rffgp" {
		t.Errorf("default result surrogate = %q, want server default rffgp", resp.Surrogate)
	}

	// Unknown names fail fast with the uniform envelope and accepted list.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"sort","inputGB":2,"surrogate":"xgboost"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad surrogate status = %d: %s", rec.Code, rec.Body.String())
	}
	for _, want := range []string{`"invalid_argument"`, "xgboost", "gp, rffgp, forest"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("bad surrogate body missing %q: %s", want, rec.Body.String())
		}
	}
}

// wantSurrogate extracts the expected resolved backend for a request
// body submitted to the rffgp-default test server.
func wantSurrogate(body string) string {
	var req tuneRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		return ""
	}
	if req.Surrogate != "" {
		return req.Surrogate
	}
	return "rffgp"
}

// The pruning option threads end to end: an opting-in request is echoed
// on the job record and the pipeline result, the default stays off, and
// a server started with -prune applies it to every submission.
func TestJobPruningSelection(t *testing.T) {
	s := testServer(t)

	submit := func(srv *server, body string) (jobView, bool) {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit status = %d: %s", rec.Code, rec.Body.String())
		}
		var jv struct {
			jobView
			Pruning bool `json:"pruning"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
			t.Fatal(err)
		}
		return jv.jobView, jv.Pruning
	}

	// Request opt-in: echoed on the job record and the result payload.
	jv, pruning := submit(s, `{"tenant":"acme","workload":"sort","inputGB":2,"pruning":true}`)
	if !pruning {
		t.Error("job record does not echo pruning opt-in")
	}
	final := awaitJob(t, s, jv.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("final = %+v", final)
	}
	var resp tuneResponse
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Pruning {
		t.Errorf("result pruning = false, want true: %s", final.Result)
	}
	if resp.TotalDims != 10 {
		t.Errorf("result totalDims = %d, want 10 (params 10)", resp.TotalDims)
	}
	if resp.ActiveDims < 1 || resp.ActiveDims > resp.TotalDims {
		t.Errorf("result activeDims = %d out of range (total %d)", resp.ActiveDims, resp.TotalDims)
	}

	// Default stays off: no pruning field on the job or the result.
	jv, pruning = submit(s, `{"tenant":"acme","workload":"sort","inputGB":2}`)
	if pruning {
		t.Error("default submission reports pruning")
	}
	final = awaitJob(t, s, jv.ID)
	if strings.Contains(string(final.Result), `"pruning"`) {
		t.Errorf("default result carries a pruning field: %s", final.Result)
	}

	// Server-wide -prune applies to submissions that do not mention it.
	sp, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10, Workers: 2, Pruning: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sp.Close)
	jv, pruning = submit(sp, `{"tenant":"acme","workload":"sort","inputGB":2}`)
	if !pruning {
		t.Error("server-wide pruning default not echoed on the job record")
	}
	final = awaitJob(t, sp, jv.ID)
	if err := json.Unmarshal(final.Result, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Pruning {
		t.Errorf("server-wide pruning default missing from result: %s", final.Result)
	}
}
