package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/obs"
)

// sseEvent is one parsed Server-Sent Event frame.
type sseEvent struct {
	ID    uint64
	Type  string
	Event obs.Event
}

// readSSE consumes an SSE body until EOF (or until limit events), parsing
// id:/event:/data: frames. The data line is the JSONL encoding, so
// encoding/json decodes it directly — the round-trip the hand-rolled
// encoder guarantees.
func readSSE(t *testing.T, resp *http.Response, limit int) []sseEvent {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "event: "):
			cur.Type = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.Event); err != nil {
				t.Fatalf("bad data line %q: %v", line, err)
			}
		case line == "":
			if cur.Type != "" {
				out = append(out, cur)
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
			cur = sseEvent{}
		}
	}
	return out
}

// submitEventsJob posts a tuning job with a deliberately tiny tuning
// budget, so the session must emit slo_violation events, and returns the
// job ID.
func submitEventsJob(t *testing.T, s *server) string {
	t.Helper()
	body := `{"tenant":"acme","workload":"wordcount","inputGB":2,
		"objective":{"deadlineS":3600,"tuningBudgetUSD":1e-6}}`
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs status = %d: %s", rec.Code, rec.Body.String())
	}
	var jv jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
		t.Fatal(err)
	}
	return jv.ID
}

// TestJobEventStreamE2E drives a full tuning job through the HTTP API and
// audits its SSE telemetry stream end to end: framing, ordering, monotone
// best-so-far, spend that reconciles exactly against the cloud pricing
// model, and the SLO violation the tiny budget forces.
func TestJobEventStreamE2E(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submitEventsJob(t, s)
	awaitJob(t, s, id)

	// The job is terminal, so the stream is pure ring replay and must
	// terminate on its own (no client-side cancel needed).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, resp, 0)
	if len(events) < 3 {
		t.Fatalf("got %d events, want at least start/trial/end", len(events))
	}

	for _, e := range events {
		if e.ID != e.Event.Seq {
			t.Errorf("SSE id %d != event seq %d", e.ID, e.Event.Seq)
		}
		if e.Type != string(e.Event.Type) {
			t.Errorf("SSE event field %q != payload type %q", e.Type, e.Event.Type)
		}
		if e.Event.Session != id || e.Event.Tenant != "acme" || e.Event.Workload != "wordcount" {
			t.Errorf("event identity = %s/%s/%s, want %s/acme/wordcount",
				e.Event.Session, e.Event.Tenant, e.Event.Workload, id)
		}
	}
	if events[0].Event.Type != obs.EventSessionStart {
		t.Errorf("first event = %s, want session_start", events[0].Event.Type)
	}
	if last := events[len(events)-1].Event; last.Type != obs.EventSessionEnd {
		t.Errorf("last event = %s, want session_end", last.Type)
	}

	catalog := cloud.DefaultCatalog()
	trials, violations := 0, 0
	prevBest := math.Inf(1)
	var sum float64
	var lastSpend float64
	for _, e := range events {
		ev := e.Event
		switch ev.Type {
		case obs.EventTrial, obs.EventExecution:
			sum += ev.CostUSD
			if math.Abs(ev.SpendUSD-sum) > 1e-9 {
				t.Fatalf("event %d spend %v != running cost sum %v", ev.Seq, ev.SpendUSD, sum)
			}
			lastSpend = ev.SpendUSD
			if ev.Cluster != "" {
				spec := parseCluster(t, catalog, ev.Cluster)
				if want := spec.CostOf(ev.RuntimeS); math.Abs(ev.CostUSD-want) > 1e-9 {
					t.Errorf("event %d cost %v != CostOf(%v) = %v on %s",
						ev.Seq, ev.CostUSD, ev.RuntimeS, want, ev.Cluster)
				}
			}
		case obs.EventSLOViolation:
			violations++
			if !strings.Contains(ev.Detail, "exceeds budget") {
				t.Errorf("violation detail = %q, want spend-budget text", ev.Detail)
			}
		}
		if ev.Type != obs.EventTrial {
			continue
		}
		trials++
		if ev.Trial != trials {
			t.Errorf("trial numbering: got %d, want %d", ev.Trial, trials)
		}
		if ev.BestSoFar != 0 {
			if ev.BestSoFar > prevBest+1e-12 {
				t.Errorf("best-so-far regressed: %v after %v at trial %d", ev.BestSoFar, prevBest, ev.Trial)
			}
			prevBest = ev.BestSoFar
		}
	}
	if trials < 1 {
		t.Fatal("no trial events in stream")
	}
	if violations == 0 {
		t.Error("tiny tuning budget produced no slo_violation events")
	}
	if end := events[len(events)-1].Event; math.Abs(end.SpendUSD-lastSpend) > 1e-9 {
		t.Errorf("session_end spend %v != last accrued spend %v", end.SpendUSD, lastSpend)
	}
}

// parseCluster resolves "4x nimbus/h1.4xlarge" back to a ClusterSpec.
func parseCluster(t *testing.T, c *cloud.Catalog, s string) cloud.ClusterSpec {
	t.Helper()
	i := strings.Index(s, "x ")
	if i < 0 {
		t.Fatalf("unparseable cluster %q", s)
	}
	count, err := strconv.Atoi(s[:i])
	if err != nil {
		t.Fatalf("unparseable cluster count in %q: %v", s, err)
	}
	inst, err := c.Lookup(s[i+2:])
	if err != nil {
		t.Fatalf("unknown instance in %q: %v", s, err)
	}
	return cloud.ClusterSpec{Instance: inst, Count: count}
}

// TestJobEventStreamResume verifies ?from= / Last-Event-ID replay: a
// reconnect that presents a mid-stream cursor receives exactly the
// events after it, no gap and no duplicate.
func TestJobEventStreamResume(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submitEventsJob(t, s)
	awaitJob(t, s, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	all := readSSE(t, resp, 0)
	if len(all) < 4 {
		t.Fatalf("need a few events to split, got %d", len(all))
	}
	cursor := all[len(all)/2].ID

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.FormatUint(cursor, 10))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rest := readSSE(t, resp2, 0)
	want := all[len(all)/2+1:]
	if len(rest) != len(want) {
		t.Fatalf("resume from %d returned %d events, want %d", cursor, len(rest), len(want))
	}
	for i := range rest {
		if rest[i].ID != want[i].ID {
			t.Errorf("resume event %d has seq %d, want %d", i, rest[i].ID, want[i].ID)
		}
	}

	// An explicit ?from= beyond the end yields an empty, terminated stream.
	resp3, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events?from=" +
		strconv.FormatUint(all[len(all)-1].ID, 10))
	if err != nil {
		t.Fatal(err)
	}
	if tail := readSSE(t, resp3, 0); len(tail) != 0 {
		t.Errorf("from=end returned %d events, want 0", len(tail))
	}
}

func TestJobEventsUnknownJob(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/job-999999/events", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

// TestShutdownClosesStreamsAndFlushes pins the graceful-shutdown
// semantics: Close must unblock live SSE tailers (the event log closes
// their channels) and flush the event ring to -events-out as decodable
// JSONL, after the engine has drained — so the file holds the complete
// session history.
func TestShutdownClosesStreamsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	s, err := newServer(serverConfig{
		Seed: 1, Params: 10, CloudBudget: 5, DISCBudget: 8, Workers: 2,
		EventsPath: eventsPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submitEventsJob(t, s)
	awaitJob(t, s, id)

	// A live tail of the global stream: it has no terminal condition, so
	// only shutdown can end it.
	resp, err := http.Get(ts.URL + "/v1/events?from=999999")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		readSSE(t, resp, 0)
	}()

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		s.Close()
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return with a live SSE subscriber")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not end on shutdown")
	}

	raw, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatalf("event flush missing: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("flushed %d events, want a full session", len(lines))
	}
	var sawStart, sawEnd bool
	var prevSeq uint64
	for i, line := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if e.Seq <= prevSeq {
			t.Fatalf("flush out of order: seq %d after %d", e.Seq, prevSeq)
		}
		prevSeq = e.Seq
		switch e.Type {
		case obs.EventSessionStart:
			sawStart = true
		case obs.EventSessionEnd:
			sawEnd = true
		}
	}
	if !sawStart || !sawEnd {
		t.Errorf("flush missing session bounds: start=%v end=%v", sawStart, sawEnd)
	}

	// Close again: must be a no-op, not a deadlock or double-close panic.
	s.Close()
}

// TestUsageEndpoints verifies the per-tenant accounting surfaced over
// HTTP reconciles with the job's own telemetry stream.
func TestUsageEndpoints(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	id := submitEventsJob(t, s)
	awaitJob(t, s, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var wantTrials int
	var wantSpend float64
	for _, e := range readSSE(t, resp, 0) {
		if e.Event.Type == obs.EventTrial || e.Event.Type == obs.EventExecution {
			wantTrials++
			wantSpend += e.Event.CostUSD
		}
	}

	// The usage pump folds events asynchronously; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tenants/acme/usage", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET usage status = %d: %s", rec.Code, rec.Body.String())
		}
		var u struct {
			Tenant     string  `json:"tenant"`
			Jobs       int     `json:"jobs"`
			Trials     int     `json:"trials"`
			SpendUSD   float64 `json:"spendUSD"`
			Attainment float64 `json:"attainment"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &u); err != nil {
			t.Fatal(err)
		}
		if u.Trials == wantTrials {
			if u.Jobs != 1 || math.Abs(u.SpendUSD-wantSpend) > 1e-9 {
				t.Fatalf("usage = %+v, want 1 job, spend %v", u, wantSpend)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("usage trials = %d, want %d", u.Trials, wantTrials)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/usage", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"acme"`) {
		t.Fatalf("GET /v1/usage = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tenants/nobody/usage", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d, want 404", rec.Code)
	}
}

// TestObjectiveValidation rejects negative objective clauses.
func TestObjectiveValidation(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	body := `{"tenant":"acme","workload":"wordcount","inputGB":2,"objective":{"deadlineS":-1}}`
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
}

// TestDashboardServed sanity-checks the zero-dependency dashboard: HTML,
// wired to the SSE feed, no external asset references.
func TestDashboardServed(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dashboard", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "EventSource") || !strings.Contains(body, "/v1/events") {
		t.Error("dashboard does not subscribe to /v1/events")
	}
	for _, banned := range []string{"<script src=", "<link ", "http://", "https://"} {
		if strings.Contains(body, banned) {
			t.Errorf("dashboard references external assets: found %q", banned)
		}
	}
	// The pruning KPI: the page must subscribe to prune events and render
	// the active-dimension count.
	if !strings.Contains(body, `"prune"`) || !strings.Contains(body, `data-k="dims"`) {
		t.Error("dashboard missing the active-dims KPI wired to prune events")
	}
}

// TestHealthzReportsEvents: the readiness payload must surface event-bus
// occupancy so operators can see drops.
func TestHealthzReportsEvents(t *testing.T) {
	s := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()
	id := submitEventsJob(t, s)
	awaitJob(t, s, id)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hr struct {
		Events obs.EventStats `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Events.Published == 0 || hr.Events.Capacity == 0 {
		t.Errorf("healthz events stats empty: %+v", hr.Events)
	}
}
