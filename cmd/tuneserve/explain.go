package main

import (
	"math"
	"net/http"

	"seamlesstune/internal/jobs"
	"seamlesstune/internal/obs"
)

// explainResponse is the payload of GET /v1/jobs/{id}/explain: the
// tuner's decision process for one job, folded from the retained event
// stream — per-phase search progress, the acquisition (EI) trace, the
// latest surrogate-calibration verdict, and the latest stall verdict.
// It is a summary over whatever the ring still retains; a job whose
// events aged out of the ring explains as much as is left.
type explainResponse struct {
	Job   string `json:"job"`
	State string `json:"state"`
	// Diagnostics echoes whether the job ran with the diagnostics layer;
	// a false here explains why the phases carry no decide/health data.
	Diagnostics bool   `json:"diagnostics"`
	Surrogate   string `json:"surrogate,omitempty"`
	// Events is how many of the job's events were folded.
	Events int            `json:"events"`
	Phases []phaseExplain `json:"phases"`
}

// phaseExplain summarizes one pipeline phase's tuning loop.
type phaseExplain struct {
	Phase  string `json:"phase"`
	Trials int    `json:"trials"`
	Failed int    `json:"failed"`
	// BestSoFar is the phase's best observed objective; Plateau how many
	// trials have landed since it last improved.
	BestSoFar float64 `json:"bestSoFar,omitempty"`
	Plateau   int     `json:"plateau"`
	// Decisions counts the explained EI-guided proposals; LastEI/PeakEI
	// the latest and largest chosen-candidate EI, EIDecay their ratio.
	Decisions int     `json:"decisions"`
	LastEI    float64 `json:"lastEI,omitempty"`
	PeakEI    float64 `json:"peakEI,omitempty"`
	EIDecay   float64 `json:"eiDecay,omitempty"`
	// ExploitShare is the exploitation fraction of the latest decision's
	// EI — near 1 the model is refining a known optimum, near 0 it is
	// still exploring uncertainty.
	ExploitShare float64 `json:"exploitShare,omitempty"`
	// Calibration is the latest model_health verdict, Stall the latest
	// stall verdict (absent until the diagnostics first speak).
	Calibration *calibrationExplain `json:"calibration,omitempty"`
	Stall       *stallExplain       `json:"stall,omitempty"`
}

type calibrationExplain struct {
	Scores    int     `json:"scores"`
	Coverage1 float64 `json:"coverage1"`
	Coverage2 float64 `json:"coverage2"`
	RMSE      float64 `json:"rmse"`
	NLPD      float64 `json:"nlpd"`
	Severity  string  `json:"severity"`
	Detail    string  `json:"detail,omitempty"`
}

type stallExplain struct {
	Plateau  int     `json:"plateau"`
	EIDecay  float64 `json:"eiDecay"`
	Severity string  `json:"severity"`
	Detail   string  `json:"detail,omitempty"`
}

// handleExplain serves the tuner-introspection summary for one job.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	resp := explainJob(job, s.events.Snapshot(0))
	writeJSON(w, http.StatusOK, resp)
}

// explainJob folds the job's retained events into the explain summary.
// Pure so tests can drive it with synthetic streams.
func explainJob(job jobs.Job, events []obs.Event) explainResponse {
	resp := explainResponse{
		Job:         job.ID,
		State:       string(job.State),
		Diagnostics: job.Diagnostics,
		Surrogate:   job.Surrogate,
	}
	byPhase := map[string]*phaseExplain{}
	order := []string{}
	phase := func(name string) *phaseExplain {
		if p, ok := byPhase[name]; ok {
			return p
		}
		p := &phaseExplain{Phase: name}
		byPhase[name] = p
		order = append(order, name)
		return p
	}
	for _, e := range events {
		if e.Session != job.ID {
			continue
		}
		resp.Events++
		if e.Phase == "" {
			continue
		}
		switch e.Type {
		case obs.EventTrial:
			p := phase(e.Phase)
			p.Trials++
			if e.Failed {
				p.Failed++
			}
			// BestSoFar rides on trial events once a success landed; a new
			// incumbent (zero regret on a success) resets the plateau.
			if e.BestSoFar != 0 {
				improved := !e.Failed && e.RegretS == 0 && finiteOr0(e.BestSoFar) != p.BestSoFar
				p.BestSoFar = finiteOr0(e.BestSoFar)
				if improved {
					p.Plateau = 0
				} else {
					p.Plateau++
				}
			}
		case obs.EventDecide:
			p := phase(e.Phase)
			p.Decisions++
			p.LastEI = finiteOr0(e.EI)
			if p.LastEI > p.PeakEI {
				p.PeakEI = p.LastEI
			}
			if sum := e.EIExploit + e.EIExplore; sum > 0 {
				p.ExploitShare = finiteOr0(e.EIExploit / sum)
			}
		case obs.EventModelHealth:
			p := phase(e.Phase)
			p.Calibration = &calibrationExplain{
				Scores:    e.Scores,
				Coverage1: finiteOr0(e.Coverage1),
				Coverage2: finiteOr0(e.Coverage2),
				RMSE:      finiteOr0(e.RMSE),
				NLPD:      finiteOr0(e.NLPD),
				Severity:  e.Severity,
				Detail:    e.Detail,
			}
		case obs.EventStall:
			p := phase(e.Phase)
			p.Stall = &stallExplain{
				Plateau:  e.Plateau,
				EIDecay:  finiteOr0(e.EIDecay),
				Severity: e.Severity,
				Detail:   e.Detail,
			}
		}
	}
	for _, name := range order {
		p := byPhase[name]
		if p.PeakEI > 0 {
			p.EIDecay = p.LastEI / p.PeakEI
		}
		resp.Phases = append(resp.Phases, *p)
	}
	return resp
}

// finiteOr0 keeps the explain document valid JSON: encoding/json
// rejects non-finite floats.
func finiteOr0(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
