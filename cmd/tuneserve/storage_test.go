package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seamlesstune/internal/storage"
)

// A WAL-backed server persists tuning history across restarts without a
// snapshot file: the second server replays the log and serves the first
// server's tenants.
func TestWALPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 2, DataDir: dir}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}
	// /healthz surfaces the backend and its append counters.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Storage storage.Stats `json:"storage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Storage.Backend != "wal" {
		t.Fatalf("healthz backend = %q, want wal", health.Storage.Backend)
	}
	if health.Storage.Records == 0 {
		t.Errorf("healthz shows no persisted records: %+v", health.Storage)
	}
	s.Close()

	s2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if !strings.Contains(rec.Body.String(), "acme") {
		t.Errorf("restarted server lost history: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/storage", nil))
	var st storage.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RecoveredRecords == 0 {
		t.Errorf("restarted server reports no recovered records: %+v", st)
	}
}

// POST /v1/admin/compact folds sealed segments into a snapshot record
// and reports the post-compaction stats.
func TestAdminCompact(t *testing.T) {
	cfg := serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 2, DataDir: t.TempDir()}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"tenant":"acme","workload":"sort","inputGB":1}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/admin/compact", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", rec.Code, rec.Body.String())
	}
	var st storage.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Compactions == 0 {
		t.Errorf("compact did not run: %+v", st)
	}
	if st.LastCompactionUnix == 0 {
		t.Errorf("compaction timestamp missing: %+v", st)
	}
}

// A saturated storage backend sheds job submissions with 429 and a
// Retry-After header, and /healthz reflects the backpressure state.
func TestSubmitShedsUnderBackpressure(t *testing.T) {
	s := testServer(t)
	s.engine.SetBackpressure(func() (bool, time.Duration) { return true, 3 * time.Second })

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("submit status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"storage_backpressure"`) {
		t.Errorf("body = %s", rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q", got, "3")
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health struct {
		Engine struct {
			Shed         int64 `json:"shed"`
			Backpressure bool  `json:"backpressure"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Engine.Backpressure || health.Engine.Shed != 1 {
		t.Errorf("healthz backpressure = %+v, want shed=1 backpressure=true", health.Engine)
	}

	// Clearing the probe restores admission.
	s.engine.SetBackpressure(nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":2}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit after clearing = %d: %s", rec.Code, rec.Body.String())
	}
	var jv jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &jv); err != nil {
		t.Fatal(err)
	}
	awaitJob(t, s, jv.ID)
}

// The explicit -backend flag wins over path inference, and an unknown
// backend is rejected at startup.
func TestBackendSelection(t *testing.T) {
	s, err := newServer(serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 1, Backend: "memory"})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/storage", nil))
	var st storage.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != "memory" {
		t.Errorf("backend = %q, want memory", st.Backend)
	}
	s.Close()

	if _, err := newServer(serverConfig{Backend: "etcd"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// WAL fsync and append metric families surface in /metrics once a WAL
// backend has traffic.
func TestWALMetricsExposed(t *testing.T) {
	cfg := serverConfig{Seed: 1, Params: 8, CloudBudget: 5, DISCBudget: 8, Workers: 1, DataDir: t.TempDir()}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/tune",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":1}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("tune status = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, family := range []string{"wal_appends_total", "wal_fsync_seconds", "storage_records_total"} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}
