package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"seamlesstune/internal/telemetry"
)

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	// Drive two deterministic polls instead of waiting on the background
	// sampler.
	now := time.Now()
	s.telemetry.Poll(now.Add(-2 * time.Second))
	s.telemetry.Poll(now.Add(-1 * time.Second))

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/query?metric=jobs_queue_depth", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var qr struct {
		Metric string                   `json:"metric"`
		StepS  float64                  `json:"stepS"`
		Series []telemetry.SeriesResult `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Metric != "jobs_queue_depth" {
		t.Errorf("metric = %q", qr.Metric)
	}
	if len(qr.Series) != 1 || len(qr.Series[0].Points) == 0 {
		t.Fatalf("series = %+v, want one with points", qr.Series)
	}
	if qr.StepS < s.telemetry.Interval().Seconds() {
		t.Errorf("step %vs below the sampling interval", qr.StepS)
	}
}

func TestQueryEndpointValidation(t *testing.T) {
	s := testServer(t)
	s.telemetry.Poll(time.Now())

	cases := []struct {
		url  string
		want string
	}{
		{"/v1/query", "metric is required"},
		{"/v1/query?metric=x&from=bogus", "bad from"},
		{"/v1/query?metric=x&to=bogus", "bad to"},
		{"/v1/query?metric=x&from=2000&to=1000", "from must precede"},
		{"/v1/query?metric=x&step=nope", "bad step"},
		{"/v1/query?metric=x&step=-5s", "bad step"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.url, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), c.want) {
			t.Errorf("%s: body %q missing %q", c.url, rec.Body.String(), c.want)
		}
	}
	// The missing-metric hint lists known metrics for discovery.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/query", nil))
	if !strings.Contains(rec.Body.String(), "jobs_queue_depth") {
		t.Errorf("error hint does not list known metrics: %s", rec.Body.String())
	}
	// An unknown metric is an empty result, not an error.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/query?metric=no_such_metric", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"series": []`) {
		t.Errorf("unknown metric: status %d body %s", rec.Code, rec.Body.String())
	}
}

func TestQueryEndpointLabelMatcher(t *testing.T) {
	s := testServer(t)
	rec0 := httptest.NewRecorder()
	s.ServeHTTP(rec0, httptest.NewRequest(http.MethodPost, "/v1/jobs",
		strings.NewReader(`{"tenant":"acme","workload":"wordcount","inputGB":1}`)))
	if rec0.Code != http.StatusAccepted && rec0.Code != http.StatusOK {
		t.Fatalf("submit status = %d: %s", rec0.Code, rec0.Body.String())
	}
	s.telemetry.Poll(time.Now().Add(-time.Second))
	s.telemetry.Poll(time.Now())

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/v1/query?metric=jobs_submitted_total&tenant=acme", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var qr struct {
		Series []telemetry.SeriesResult `json:"series"`
	}
	json.Unmarshal(rec.Body.Bytes(), &qr)
	for _, sr := range qr.Series {
		if sr.Labels["tenant"] != "acme" {
			t.Errorf("matcher leaked series %+v", sr.Labels)
		}
	}
}

func TestAlertsEndpoint(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var ar struct {
		Firing int                     `json:"firing"`
		Alerts []telemetry.AlertStatus `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Alerts) != len(telemetry.DefaultRules()) {
		t.Fatalf("%d rules exposed, want the %d defaults", len(ar.Alerts), len(telemetry.DefaultRules()))
	}
	if ar.Firing != 0 {
		t.Errorf("fresh server firing = %d", ar.Firing)
	}
	for _, a := range ar.Alerts {
		if a.State != telemetry.StateInactive {
			t.Errorf("rule %s starts %s, want inactive", a.Name, a.State)
		}
		if a.Detail == "" {
			t.Errorf("rule %s has no detail", a.Name)
		}
	}
}

func TestAlertRulesFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	os.WriteFile(path, []byte(`[{"name":"custom","kind":"threshold","metric":"jobs_queue_depth","value":1,"window":"1m","for":"1m"}]`), 0o644)
	s, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10, Workers: 1, AlertRules: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/alerts", nil))
	if !strings.Contains(rec.Body.String(), `"custom"`) {
		t.Errorf("custom rule not loaded: %s", rec.Body.String())
	}

	// A malformed rules file must fail startup, not limp along unalerted.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`[{"name":"x","kind":"wat"}]`), 0o644)
	if _, err := newServer(serverConfig{Seed: 1, Params: 10, CloudBudget: 6, DISCBudget: 10, Workers: 1, AlertRules: bad}); err == nil {
		t.Fatal("invalid rules accepted")
	}
}

func TestHealthzReportsTelemetry(t *testing.T) {
	s := testServer(t)
	s.telemetry.Poll(time.Now())
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hr struct {
		Telemetry telemetry.Stats `json:"telemetry"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Telemetry.Series == 0 || hr.Telemetry.Samples == 0 {
		t.Errorf("healthz telemetry block empty: %+v", hr.Telemetry)
	}
}
