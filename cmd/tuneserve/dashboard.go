package main

// dashboardHTML is the whole dashboard: one page, no external assets, no
// build step. It subscribes to /v1/events with an EventSource (which
// auto-reconnects and resumes via Last-Event-ID) and renders, per
// session: the convergence curve (objective + best-so-far), cumulative
// tuning spend against the session budget, the SLO burn-down, the
// acquisition EI-decay trace (decide events, exploit vs total), and the
// surrogate-calibration coverage (model_health events against the
// 68%/95% ideals), plus a model-health KPI and a rolling violation
// feed. Canvas charts are redrawn from the retained points on every
// batch, so a page opened mid-session backfills from the ring replay.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>seamlesstune — live tuning telemetry</title>
<style>
  :root { --bg:#11141a; --panel:#1a1f29; --ink:#d6dce8; --dim:#7a8499;
          --accent:#5ab0f7; --best:#58d68d; --bad:#f06a6a; --grid:#262c3a; }
  body { background:var(--bg); color:var(--ink); font:14px/1.45 system-ui,sans-serif; margin:0; padding:18px; }
  h1 { font-size:18px; margin:0 0 2px; } h1 span { color:var(--dim); font-weight:normal; }
  #status { color:var(--dim); margin-bottom:14px; }
  #status.live::before { content:"●"; color:var(--best); margin-right:6px; }
  #status.down::before { content:"●"; color:var(--bad); margin-right:6px; }
  .session { background:var(--panel); border-radius:8px; padding:12px 14px; margin-bottom:14px; }
  .session h2 { font-size:15px; margin:0 0 8px; }
  .session h2 small { color:var(--dim); font-weight:normal; margin-left:8px; }
  .charts { display:flex; gap:14px; flex-wrap:wrap; }
  .chart { flex:1 1 260px; min-width:240px; }
  .chart .t { color:var(--dim); font-size:12px; margin-bottom:4px; }
  canvas { width:100%; height:130px; background:var(--bg); border-radius:4px; }
  .kpis { display:flex; gap:18px; margin:8px 0 10px; flex-wrap:wrap; }
  .kpi b { display:block; font-size:16px; } .kpi span { color:var(--dim); font-size:12px; }
  .viol { color:var(--bad); font-size:12px; margin-top:8px; white-space:pre-wrap; }
  #empty { color:var(--dim); }
  #ops { background:var(--panel); border-radius:8px; padding:10px 14px; margin-bottom:14px; }
  #ops .charts { display:flex; gap:14px; flex-wrap:wrap; }
  #ops canvas { height:56px; }
  #ops .chart .v { font-size:13px; }
  #alerts { margin-top:8px; font-size:12px; }
  #alerts .firing { color:var(--bad); }
  #alerts .pending { color:#e8c268; }
</style>
</head>
<body>
<h1>seamlesstune <span>live tuning telemetry</span></h1>
<div id="status">connecting…</div>
<div id="ops">
  <div class="charts">
    <div class="chart"><div class="t">jobs finished/s <span class="v" data-o="v-jobs"></span></div><canvas data-o="jobs_finished_total" width="520" height="112"></canvas></div>
    <div class="chart"><div class="t">queue depth <span class="v" data-o="v-queue"></span></div><canvas data-o="jobs_queue_depth" width="520" height="112"></canvas></div>
    <div class="chart"><div class="t">fsync p99 (ms) <span class="v" data-o="v-fsync"></span></div><canvas data-o="wal_fsync_seconds:p99" width="520" height="112"></canvas></div>
  </div>
  <div id="alerts"></div>
</div>
<div id="sessions"><p id="empty">No sessions yet — submit a job with POST /v1/jobs.</p></div>
<script>
"use strict";
const sessions = new Map();   // session id -> {events, card, dirty}
const fmt = (v, d=2) => v == null ? "–" : v.toFixed(d);

function card(id, ev) {
  const div = document.createElement("div");
  div.className = "session";
  div.innerHTML =
    '<h2>' + id + '<small>' + (ev.tenant||"") + ' / ' + (ev.workload||"") + '</small></h2>' +
    '<div class="kpis">' +
      '<div class="kpi"><b data-k="trial">–</b><span>trials</span></div>' +
      '<div class="kpi"><b data-k="best">–</b><span>best runtime (s)</span></div>' +
      '<div class="kpi"><b data-k="spend">–</b><span>spend (USD)</span></div>' +
      '<div class="kpi"><b data-k="attain">–</b><span>SLO attainment</span></div>' +
      '<div class="kpi"><b data-k="dims">–</b><span>active dims</span></div>' +
      '<div class="kpi"><b data-k="health">–</b><span>model health</span></div>' +
      '<div class="kpi"><b data-k="state">running</b><span>state</span></div>' +
    '</div>' +
    '<div class="charts">' +
      '<div class="chart"><div class="t">convergence (objective · best-so-far)</div><canvas data-c="conv" width="520" height="260"></canvas></div>' +
      '<div class="chart"><div class="t">cumulative spend · projection</div><canvas data-c="spend" width="520" height="260"></canvas></div>' +
      '<div class="chart"><div class="t">SLO burn-down (attainment)</div><canvas data-c="slo" width="520" height="260"></canvas></div>' +
      '<div class="chart"><div class="t">acquisition EI decay (total · exploit)</div><canvas data-c="ei" width="520" height="260"></canvas></div>' +
      '<div class="chart"><div class="t">calibration coverage (1σ · 2σ vs 68/95%)</div><canvas data-c="cal" width="520" height="260"></canvas></div>' +
    '</div>' +
    '<div class="viol" data-k="viol"></div>';
  document.getElementById("sessions").prepend(div);
  const empty = document.getElementById("empty");
  if (empty) empty.remove();
  return div;
}

function line(ctx, pts, xmax, ymin, ymax, color) {
  if (!pts.length) return;
  const W = ctx.canvas.width, H = ctx.canvas.height, pad = 8;
  const span = (ymax - ymin) || 1;
  ctx.strokeStyle = color; ctx.lineWidth = 2; ctx.beginPath();
  pts.forEach((p, i) => {
    const x = pad + (W - 2*pad) * (p[0] / Math.max(xmax, 1));
    const y = H - pad - (H - 2*pad) * ((p[1] - ymin) / span);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

function draw(s) {
  const trials = s.events.filter(e => e.type === "trial");
  const ok = trials.filter(e => !e.failed);
  const last = s.events[s.events.length - 1] || {};
  const lastTrial = trials[trials.length - 1];
  const q = (k, v) => s.card.querySelector('[data-k="' + k + '"]').textContent = v;
  q("trial", trials.length + (last.budgetTrials ? "/" + last.budgetTrials : ""));
  q("best", fmt(lastTrial && lastTrial.bestSoFar, 1));
  q("spend", "$" + fmt(lastTrial ? lastTrial.spendUSD : last.spendUSD, 4));
  q("attain", lastTrial && lastTrial.bestSoFar ? fmt((lastTrial.attainment||0)*100, 0) + "%" : "–");
  // Active search dimension: the latest prune event wins; trial events
  // re-stamp it once a subspace is adopted. Sessions without pruning
  // never carry either, so the KPI stays at the dash.
  const prunes = s.events.filter(e => e.type === "prune");
  const dimSrc = prunes[prunes.length - 1] || (lastTrial && lastTrial.activeDims ? lastTrial : null);
  q("dims", dimSrc ? dimSrc.activeDims + "/" + dimSrc.totalDims : "–");
  if (last.type === "session_end") q("state", "done — " + (last.detail || ""));
  // Model health: worst of the latest model_health and stall verdicts.
  const healths = s.events.filter(e => e.type === "model_health");
  const stalls = s.events.filter(e => e.type === "stall");
  const lastHealth = healths[healths.length - 1], lastStall = stalls[stalls.length - 1];
  const sev = v => v === "critical" ? 2 : v === "warn" ? 1 : 0;
  if (lastHealth || lastStall) {
    const worst = [lastHealth, lastStall].filter(Boolean)
      .sort((a, b) => sev(b.severity) - sev(a.severity))[0];
    q("health", worst.severity || "ok");
  }
  const viols = s.events.filter(e => e.type === "slo_violation");
  q("viol", viols.slice(-3).map(v => "⚠ " + v.detail).join("\n"));

  const xmax = trials.length;
  const cv = s.card.querySelector('[data-c="conv"]').getContext("2d");
  cv.clearRect(0, 0, cv.canvas.width, cv.canvas.height);
  const objs = ok.map(e => e.objective).concat(ok.map(e => e.bestSoFar||0)).filter(v => v > 0);
  if (objs.length) {
    const ymin = Math.min(...objs), ymax = Math.max(...objs);
    line(cv, ok.map((e,i) => [i+1, e.objective]), xmax, ymin, ymax, "#5ab0f7");
    line(cv, ok.filter(e => e.bestSoFar).map((e,i) => [i+1, e.bestSoFar]), xmax, ymin, ymax, "#58d68d");
  }
  const sp = s.card.querySelector('[data-c="spend"]').getContext("2d");
  sp.clearRect(0, 0, sp.canvas.width, sp.canvas.height);
  const spends = trials.map(e => e.spendUSD || 0);
  const projs = trials.map(e => e.projectedSpendUSD || 0);
  const smax = Math.max(...spends, ...projs, 1e-9);
  line(sp, spends.map((v,i) => [i+1, v]), xmax, 0, smax, "#5ab0f7");
  line(sp, projs.map((v,i) => [i+1, v]), xmax, 0, smax, "#7a8499");
  const sl = s.card.querySelector('[data-c="slo"]').getContext("2d");
  sl.clearRect(0, 0, sl.canvas.width, sl.canvas.height);
  line(sl, trials.map((e,i) => [i+1, e.attainment || 0]), xmax, 0, 1, viols.length ? "#f06a6a" : "#58d68d");

  // EI decay: the chosen candidate's EI per decide event, with its
  // exploitation component underneath — the gap between the lines is the
  // exploration term. A trace sinking toward zero is convergence.
  const decides = s.events.filter(e => e.type === "decide");
  const ei = s.card.querySelector('[data-c="ei"]').getContext("2d");
  ei.clearRect(0, 0, ei.canvas.width, ei.canvas.height);
  if (decides.length) {
    const emax = Math.max(...decides.map(e => e.ei || 0), 1e-9);
    line(ei, decides.map((e,i) => [i+1, e.ei || 0]), decides.length, 0, emax, "#5ab0f7");
    line(ei, decides.map((e,i) => [i+1, e.eiExploit || 0]), decides.length, 0, emax, "#58d68d");
  }

  // Calibration coverage on [0,1]: observed 1σ/2σ coverage per
  // model_health event against the 68%/95% ideals (dim guide lines).
  const cal = s.card.querySelector('[data-c="cal"]').getContext("2d");
  cal.clearRect(0, 0, cal.canvas.width, cal.canvas.height);
  if (healths.length) {
    line(cal, [[1, 0.683], [healths.length, 0.683]], healths.length, 0, 1, "#262c3a");
    line(cal, [[1, 0.954], [healths.length, 0.954]], healths.length, 0, 1, "#262c3a");
    line(cal, healths.map((e,i) => [i+1, e.coverage1 || 0]), healths.length, 0, 1, "#5ab0f7");
    line(cal, healths.map((e,i) => [i+1, e.coverage2 || 0]), healths.length, 0, 1, "#58d68d");
  }
}

function onEvent(e) {
  const ev = JSON.parse(e.data);
  if (!ev.session) return;
  let s = sessions.get(ev.session);
  if (!s) { s = { events: [], card: card(ev.session, ev), dirty: false }; sessions.set(ev.session, s); }
  s.events.push(ev);
  if (s.events.length > 5000) s.events.splice(0, s.events.length - 5000);
  s.dirty = true;
}

// Batch redraws: the stream can burst hundreds of events per second in
// simulation; repainting at most ~5 Hz keeps the page responsive.
setInterval(() => {
  sessions.forEach(s => { if (s.dirty) { s.dirty = false; draw(s); } });
}, 200);

// Ops strip: sparklines come from the server's durable time-series
// store (/v1/query) instead of in-page accumulation, so a freshly
// opened page — or a restarted server — shows real history at once.
const opsScales = { "jobs_finished_total": 1, "jobs_queue_depth": 1, "wal_fsync_seconds:p99": 1000 };
const opsValues = { "jobs_finished_total": "v-jobs", "jobs_queue_depth": "v-queue", "wal_fsync_seconds:p99": "v-fsync" };
function spark(canvas, pts, scale) {
  const ctx = canvas.getContext("2d");
  ctx.clearRect(0, 0, canvas.width, canvas.height);
  if (!pts.length) return "–";
  const vals = pts.map(p => p.avg * scale);
  line(ctx, vals.map((v, i) => [i + 1, v]), vals.length, Math.min(...vals, 0), Math.max(...vals, 1e-9), "#5ab0f7");
  return vals[vals.length - 1].toFixed(2);
}
async function refreshOps() {
  const now = Math.floor(Date.now() / 1000);
  for (const canvas of document.querySelectorAll("#ops canvas")) {
    const metric = canvas.dataset.o;
    try {
      const r = await fetch("/v1/query?metric=" + encodeURIComponent(metric) +
        "&from=" + (now - 300) + "&to=" + now + "&step=5s");
      const q = await r.json();
      const pts = (q.series && q.series.length) ? q.series[0].points : [];
      const cur = spark(canvas, pts, opsScales[metric] || 1);
      document.querySelector('[data-o="' + opsValues[metric] + '"]').textContent = cur;
    } catch (_) { /* server briefly away; the next tick retries */ }
  }
  try {
    const r = await fetch("/v1/alerts");
    const a = await r.json();
    const active = (a.alerts || []).filter(x => x.state !== "inactive");
    document.getElementById("alerts").innerHTML = active.length
      ? active.map(x => '<span class="' + x.state + '">' + (x.state === "firing" ? "🔥 " : "⏳ ") +
          x.name + " (" + x.severity + ", " + x.state + ")</span>").join(" · ")
      : (a.firing === 0 ? "alerts: all clear" : "");
  } catch (_) {}
}
refreshOps();
setInterval(refreshOps, 5000);

const status = document.getElementById("status");
const src = new EventSource("/v1/events");
["session_start","trial","execution","prune","decide","model_health","stall","slo_violation","session_end","alert"].forEach(
  t => src.addEventListener(t, onEvent));
src.onopen = () => { status.textContent = "streaming /v1/events"; status.className = "live"; };
src.onerror = () => { status.textContent = "stream interrupted — retrying"; status.className = "down"; };
</script>
</body>
</html>
`
