package main

import (
	"net/http"
	"strconv"
	"time"

	"seamlesstune/internal/obs"
)

// sseRetryMS is the reconnect delay hint sent at the top of every SSE
// stream; together with Last-Event-ID resumption it makes EventSource
// reconnects gapless as long as the ring still holds the missed events.
const sseRetryMS = 1000

// parseFromSeq extracts the replay cursor for an SSE request: the ?from=
// query parameter wins, then the Last-Event-ID header an EventSource
// sends on reconnect. Events with Seq > from are (re)delivered.
func parseFromSeq(r *http.Request) uint64 {
	raw := r.URL.Query().Get("from")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0
	}
	from, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0
	}
	return from
}

// sseWriter frames events as Server-Sent Events. The id: line carries the
// event's sequence number so clients resume with Last-Event-ID; event:
// carries the type for addEventListener dispatch; data: is the JSONL
// encoding, one line, so every consumer (browser, tunectl, curl) sees the
// same schema.
type sseWriter struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	buf []byte
}

func newSSEWriter(w http.ResponseWriter) (*sseWriter, bool) {
	// ResponseController reaches Flush through the metrics middleware's
	// statusWriter via its Unwrap.
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	sw := &sseWriter{w: w, rc: rc, buf: make([]byte, 0, 512)}
	sw.buf = append(sw.buf[:0], "retry: "...)
	sw.buf = strconv.AppendInt(sw.buf, sseRetryMS, 10)
	sw.buf = append(sw.buf, '\n', '\n')
	if _, err := w.Write(sw.buf); err != nil {
		return nil, false
	}
	if err := sw.rc.Flush(); err != nil {
		return nil, false
	}
	return sw, true
}

func (sw *sseWriter) send(e obs.Event) error {
	sw.buf = append(sw.buf[:0], "id: "...)
	sw.buf = strconv.AppendUint(sw.buf, e.Seq, 10)
	sw.buf = append(sw.buf, "\nevent: "...)
	sw.buf = append(sw.buf, string(e.Type)...)
	sw.buf = append(sw.buf, "\ndata: "...)
	sw.buf = e.AppendJSONL(sw.buf)
	sw.buf = append(sw.buf, '\n', '\n')
	if _, err := sw.w.Write(sw.buf); err != nil {
		return err
	}
	return sw.rc.Flush()
}

// handleJobEvents streams one job's telemetry as SSE: first the retained
// events replayed from the ring (after ?from= / Last-Event-ID), then the
// live tail. The stream ends when the job reaches a terminal state (after
// draining what the session already published), the client disconnects,
// or the server shuts down.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.engine.Get(id); !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	s.streamEvents(w, r, id)
}

// handleEvents streams the server-wide telemetry feed (every session) as
// SSE — what the dashboard consumes. Runs until the client disconnects or
// the server shuts down.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.streamEvents(w, r, "")
}

// streamEvents is the shared SSE loop. session filters the stream to one
// job ID; empty streams everything. The subscription is registered
// atomically with the replay snapshot, so replay + tail has no gap; a
// slow client drops events (visible in /healthz events.dropped) rather
// than stalling tuning.
func (s *server) streamEvents(w http.ResponseWriter, r *http.Request, session string) {
	replay, sub := s.events.SubscribeFrom(parseFromSeq(r), 1024)
	defer sub.Close()

	// The stream is already committed once newSSEWriter writes the
	// preamble; a writer that cannot stream just ends the response.
	sw, ok := newSSEWriter(w)
	if !ok {
		return
	}
	emit := func(e obs.Event) bool {
		if session != "" && e.Session != session {
			return true
		}
		return sw.send(e) == nil
	}
	for _, e := range replay {
		if !emit(e) {
			return
		}
	}

	// For job-scoped streams, poll the job's state: once it is terminal
	// the session has published everything (session_end precedes the
	// task's return), so drain what is buffered and end the stream so
	// clients like `tunectl events` exit cleanly.
	var tick <-chan time.Time
	if session != "" {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case e, open := <-sub.C():
			if !open {
				return // server shutting down
			}
			if !emit(e) {
				return
			}
		case <-r.Context().Done():
			return
		case <-tick:
			job, ok := s.engine.Get(session)
			if !ok || !job.State.Terminal() {
				continue
			}
			for {
				select {
				case e, open := <-sub.C():
					if !open {
						return
					}
					if !emit(e) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// handleTenantUsage serves one tenant's accrued accounting.
func (s *server) handleTenantUsage(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	u, ok := s.engine.TenantUsage(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no usage recorded for tenant %q", id)
		return
	}
	writeJSON(w, http.StatusOK, u)
}

// handleUsage serves every tenant's accounting, sorted by tenant.
func (s *server) handleUsage(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Usage())
}

// handleDashboard serves the live dashboard: a single self-contained HTML
// page (no external assets, no build step) that opens an EventSource on
// /v1/events and renders convergence, spend, and SLO burn-down per
// session as the stream arrives.
func (s *server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}
