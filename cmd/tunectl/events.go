package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seamlesstune/internal/obs"
)

// reconnectDelay paces stream reconnection attempts; a variable so tests
// retry fast. maxReconnectFailures bounds consecutive attempts that make
// no progress (no connection, or connected but received nothing) before
// the tail gives up — a long outage should fail loudly, not spin.
var (
	reconnectDelay       = time.Second
	maxReconnectFailures = 5
)

// runEvents implements `tunectl events <job-id>`: it tails the job's
// telemetry stream from tuneserve's SSE endpoint and pretty-prints each
// event — or, with -json, relays the raw JSONL data lines for piping
// into jq or a file.
//
// The tail survives stream drops: every SSE frame carries its sequence
// number as the event ID, and on a dropped connection the client
// reconnects asking for `?from=<last-seen>` (the same resumption
// contract as the Last-Event-ID header), so the ring replay fills the
// gap and no event is printed twice. The loop ends when the job is
// terminal (or, with -follow=false semantics of a closed stream on a
// finished job, when the server closes a completed stream).
func runEvents(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl events", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	asJSON := fs.Bool("json", false, "print raw JSONL events instead of pretty text")
	from := fs.Uint64("from", 0, "replay from this sequence number (0 = full retained history)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// flag stops at the first positional argument; re-parse what follows
	// the job ID so both `events -json job-1` and `events job-1 -json`
	// work.
	id := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}
	if id == "" {
		return fmt.Errorf("usage: tunectl events <job-id> [-server URL] [-json] [-from SEQ]")
	}
	base := strings.TrimSuffix(*server, "/")
	lastSeq := *from
	failures := 0
	for {
		url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", base, id, lastSeq)
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		if lastSeq > 0 {
			// Belt and braces: send the standard SSE resumption header too,
			// for proxies that strip query strings.
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastSeq, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			failures++
			if failures >= maxReconnectFailures {
				return fmt.Errorf("stream unreachable after %d attempts: %w", failures, err)
			}
			time.Sleep(reconnectDelay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var envelope remoteError
			if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error.Message != "" {
				resp.Body.Close()
				return fmt.Errorf("%s: %s", envelope.Error.Code, envelope.Error.Message)
			}
			resp.Body.Close()
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		seen, streamErr := printEventStream(resp.Body, out, *asJSON, &lastSeq)
		resp.Body.Close()
		if streamErr != nil && !seen {
			// A decode error is terminal; a transport drop with no events
			// counts as a failed attempt.
			if _, ok := streamErr.(*malformedEventError); ok {
				return streamErr
			}
			failures++
			if failures >= maxReconnectFailures {
				return fmt.Errorf("stream kept dropping (%d attempts): %w", failures, streamErr)
			}
			time.Sleep(reconnectDelay)
			continue
		}
		if streamErr != nil {
			if _, ok := streamErr.(*malformedEventError); ok {
				return streamErr
			}
			// Progress was made; reset the failure budget and resume from
			// the last acknowledged sequence number.
			failures = 0
			time.Sleep(reconnectDelay)
			continue
		}
		// Clean EOF: the server closed the stream. For a terminal job that
		// is the end of the tail; otherwise (server restart, shutdown) keep
		// following until the job finishes.
		if done, err := jobTerminal(base, id); done || err != nil {
			return err
		}
		failures++
		if failures >= maxReconnectFailures {
			return fmt.Errorf("stream closed %d times with job still running", failures)
		}
		time.Sleep(reconnectDelay)
	}
}

// jobTerminal reports whether the job reached a terminal state. A
// missing job (404 — e.g. the server restarted with empty state) ends
// the tail with the server's error.
func jobTerminal(base, id string) (bool, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return false, nil // server briefly down; the caller keeps retrying
	}
	job, err := decodeJob(resp, http.StatusOK)
	if err != nil {
		return false, err
	}
	return job.State == "done" || job.State == "failed", nil
}

// malformedEventError marks a decode failure — terminal, unlike
// transport drops.
type malformedEventError struct{ err error }

func (e *malformedEventError) Error() string { return e.err.Error() }
func (e *malformedEventError) Unwrap() error { return e.err }

// printEventStream consumes SSE frames, emitting one line per event. It
// advances *lastSeq past every event it prints (from the frame's id:
// field), so a caller can resume a dropped stream without gaps or
// duplicates, and reports whether any event was seen.
func printEventStream(r io.Reader, out io.Writer, asJSON bool, lastSeq *uint64) (seen bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var id uint64
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			if v, perr := strconv.ParseUint(line[len("id: "):], 10, 64); perr == nil {
				id = v
			}
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := line[len("data: "):]
		if asJSON {
			fmt.Fprintln(out, data)
		} else {
			var e obs.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return seen, &malformedEventError{fmt.Errorf("malformed event %q: %w", data, err)}
			}
			if id == 0 {
				id = e.Seq
			}
			fmt.Fprintln(out, formatEvent(e))
		}
		seen = true
		if id > *lastSeq {
			*lastSeq = id
		}
		id = 0
	}
	return seen, sc.Err()
}

// formatEvent renders one telemetry event as a human-readable line.
func formatEvent(e obs.Event) string {
	switch e.Type {
	case obs.EventSessionStart:
		return fmt.Sprintf("session %s started: %s/%s, budget %d trials",
			e.Session, e.Tenant, e.Workload, e.BudgetTrials)
	case obs.EventTrial:
		status := fmt.Sprintf("%.1fs", e.RuntimeS)
		if e.Failed {
			status = "FAILED"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "trial %3d [%s] %-8s", e.Trial, e.Phase, status)
		if e.BestSoFar != 0 {
			fmt.Fprintf(&b, " best %.1fs", e.BestSoFar)
		}
		if e.Cluster != "" {
			fmt.Fprintf(&b, " on %s", e.Cluster)
		}
		fmt.Fprintf(&b, " cost $%.4f (spent $%.4f)", e.CostUSD, e.SpendUSD)
		if e.Attainment != 0 {
			fmt.Fprintf(&b, " slo %.0f%%", e.Attainment*100)
		}
		return b.String()
	case obs.EventExecution:
		return fmt.Sprintf("%s run: %.1fs on %s cost $%.4f (spent $%.4f)",
			e.Phase, e.RuntimeS, e.Cluster, e.CostUSD, e.SpendUSD)
	case obs.EventPrune:
		var b strings.Builder
		fmt.Fprintf(&b, "prune [%s] %d/%d dims active (%s)", e.Phase, e.ActiveDims, e.TotalDims, e.Detail)
		if e.Dropped != "" {
			fmt.Fprintf(&b, " dropped %s", e.Dropped)
		}
		if e.Importance != "" {
			fmt.Fprintf(&b, " top %s", e.Importance)
		}
		return b.String()
	case obs.EventDecide:
		return fmt.Sprintf("decide [%s] trial %d: EI %.4g (exploit %.3g + explore %.3g) rank %d/%d via %s, μ %.3f σ %.3f",
			e.Phase, e.Trial, e.EI, e.EIExploit, e.EIExplore, e.Rank, e.Candidates, e.Surrogate, e.PredMean, e.PredStd)
	case obs.EventModelHealth:
		return fmt.Sprintf("model health [%s] %s: 1σ %.0f%% / 2σ %.0f%% coverage, rmse %.3f, nlpd %.3f over %d scores — %s",
			e.Phase, strings.ToUpper(e.Severity), e.Coverage1*100, e.Coverage2*100, e.RMSE, e.NLPD, e.Scores, e.Detail)
	case obs.EventStall:
		return fmt.Sprintf("stall [%s] %s: plateau %d, EI at %.0f%% of peak — %s",
			e.Phase, strings.ToUpper(e.Severity), e.Plateau, e.EIDecay*100, e.Detail)
	case obs.EventSLOViolation:
		return fmt.Sprintf("SLO VIOLATION: %s", e.Detail)
	case obs.EventSessionEnd:
		return fmt.Sprintf("session %s ended: %s (total spend $%.4f)",
			e.Session, e.Detail, e.SpendUSD)
	default:
		return fmt.Sprintf("%s %+v", e.Type, e)
	}
}
