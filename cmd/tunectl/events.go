package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"

	"seamlesstune/internal/obs"
)

// runEvents implements `tunectl events <job-id>`: it tails the job's
// telemetry stream from tuneserve's SSE endpoint and pretty-prints each
// event — or, with -json, relays the raw JSONL data lines for piping
// into jq or a file. The stream ends when the server closes it (job
// terminal, or shutdown).
func runEvents(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl events", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	asJSON := fs.Bool("json", false, "print raw JSONL events instead of pretty text")
	from := fs.Uint64("from", 0, "replay from this sequence number (0 = full retained history)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// flag stops at the first positional argument; re-parse what follows
	// the job ID so both `events -json job-1` and `events job-1 -json`
	// work.
	id := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}
	if id == "" {
		return fmt.Errorf("usage: tunectl events <job-id> [-server URL] [-json] [-from SEQ]")
	}
	url := fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", strings.TrimSuffix(*server, "/"), id, *from)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope remoteError
		if json.NewDecoder(resp.Body).Decode(&envelope) == nil && envelope.Error.Message != "" {
			return fmt.Errorf("%s: %s", envelope.Error.Code, envelope.Error.Message)
		}
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return printEventStream(resp.Body, out, *asJSON)
}

// printEventStream consumes SSE frames, emitting one line per event.
func printEventStream(r io.Reader, out io.Writer, asJSON bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		data := line[len("data: "):]
		if asJSON {
			fmt.Fprintln(out, data)
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			return fmt.Errorf("malformed event %q: %w", data, err)
		}
		fmt.Fprintln(out, formatEvent(e))
	}
	return sc.Err()
}

// formatEvent renders one telemetry event as a human-readable line.
func formatEvent(e obs.Event) string {
	switch e.Type {
	case obs.EventSessionStart:
		return fmt.Sprintf("session %s started: %s/%s, budget %d trials",
			e.Session, e.Tenant, e.Workload, e.BudgetTrials)
	case obs.EventTrial:
		status := fmt.Sprintf("%.1fs", e.RuntimeS)
		if e.Failed {
			status = "FAILED"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "trial %3d [%s] %-8s", e.Trial, e.Phase, status)
		if e.BestSoFar != 0 {
			fmt.Fprintf(&b, " best %.1fs", e.BestSoFar)
		}
		if e.Cluster != "" {
			fmt.Fprintf(&b, " on %s", e.Cluster)
		}
		fmt.Fprintf(&b, " cost $%.4f (spent $%.4f)", e.CostUSD, e.SpendUSD)
		if e.Attainment != 0 {
			fmt.Fprintf(&b, " slo %.0f%%", e.Attainment*100)
		}
		return b.String()
	case obs.EventExecution:
		return fmt.Sprintf("%s run: %.1fs on %s cost $%.4f (spent $%.4f)",
			e.Phase, e.RuntimeS, e.Cluster, e.CostUSD, e.SpendUSD)
	case obs.EventPrune:
		var b strings.Builder
		fmt.Fprintf(&b, "prune [%s] %d/%d dims active (%s)", e.Phase, e.ActiveDims, e.TotalDims, e.Detail)
		if e.Dropped != "" {
			fmt.Fprintf(&b, " dropped %s", e.Dropped)
		}
		if e.Importance != "" {
			fmt.Fprintf(&b, " top %s", e.Importance)
		}
		return b.String()
	case obs.EventSLOViolation:
		return fmt.Sprintf("SLO VIOLATION: %s", e.Detail)
	case obs.EventSessionEnd:
		return fmt.Sprintf("session %s ended: %s (total spend $%.4f)",
			e.Session, e.Detail, e.SpendUSD)
	default:
		return fmt.Sprintf("%s %+v", e.Type, e)
	}
}
