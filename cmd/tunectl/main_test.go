package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunTunesAndPrints(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "wordcount", "-size", "2", "-tuner", "random",
		"-budget", "8", "-params", "8", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tuning wordcount (2GB)", "best runtime:", "best configuration:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunVerboseShowsTrials(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-workload", "sort", "-size", "1", "-tuner", "bestconfig",
		"-budget", "5", "-params", "6", "-v",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "run   1:") {
		t.Errorf("verbose output missing trial lines:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "workloads:") || !strings.Contains(out.String(), "bayesopt") {
		t.Errorf("list output = %s", out.String())
	}
	if !strings.Contains(out.String(), "surrogates:") || !strings.Contains(out.String(), "rffgp") {
		t.Errorf("list output missing surrogates: %s", out.String())
	}
}

// Every surrogate backend runs a local bayesopt session end to end, and
// unknown names fail before any tuning starts.
func TestRunSurrogateSelection(t *testing.T) {
	for _, kind := range []string{"gp", "rffgp", "forest"} {
		var out bytes.Buffer
		err := run([]string{
			"-workload", "wordcount", "-size", "1", "-tuner", "bayesopt",
			"-budget", "6", "-params", "4", "-surrogate", kind,
		}, &out)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
	var out bytes.Buffer
	err := run([]string{"-tuner", "bayesopt", "-surrogate", "xgboost"}, &out)
	if err == nil || !strings.Contains(err.Error(), "gp, rffgp, forest") {
		t.Errorf("err = %v, want accepted-list error", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown workload", []string{"-workload", "nope"}},
		{"unknown tuner", []string{"-tuner", "nope"}},
		{"unknown instance", []string{"-cluster", "nope/zz"}},
		{"bad nodes", []string{"-nodes", "0"}},
		{"bad interference", []string{"-interference", "extreme"}},
		{"unknown surrogate", []string{"-surrogate", "xgboost"}},
		{"surrogate without bayesopt", []string{"-tuner", "random", "-surrogate", "forest"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestAllTunerNamesResolvable(t *testing.T) {
	for _, name := range tunerNames {
		var out bytes.Buffer
		err := run([]string{
			"-workload", "wordcount", "-size", "1", "-tuner", name,
			"-budget", "3", "-params", "4",
		}, &out)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
