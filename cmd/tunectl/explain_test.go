package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const cannedExplain = `{
  "job": "job-000001", "state": "done", "diagnostics": true, "surrogate": "gp", "events": 42,
  "phases": [
    {"phase": "cloud", "trials": 10, "failed": 1, "bestSoFar": 98.2, "plateau": 2,
     "decisions": 6, "lastEI": 0.004, "peakEI": 0.08, "eiDecay": 0.05, "exploitShare": 0.9,
     "calibration": {"scores": 8, "coverage1": 0.625, "coverage2": 0.875, "rmse": 0.21,
                     "nlpd": -0.1, "severity": "ok", "detail": "calibration within tolerance"},
     "stall": {"plateau": 9, "eiDecay": 0.05, "severity": "warn",
               "detail": "9 trials without improvement"}},
    {"phase": "disc", "trials": 5, "failed": 0, "bestSoFar": 77.1, "plateau": 0,
     "decisions": 5, "lastEI": 0.3, "peakEI": 0.3, "eiDecay": 1, "exploitShare": 0.2}
  ]
}`

func explainTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/job-000001/explain" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such job"}}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, cannedExplain)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestExplainPretty(t *testing.T) {
	ts := explainTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"explain", "job-000001", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"job job-000001 (done), surrogate gp, 42 events retained",
		"phase cloud: 10 trials (1 failed), best 98.2s, 2 since improvement",
		"6 EI-guided decisions, last EI 0.004 (peak 0.08, decayed to 5%), exploit share 90%",
		"calibration [OK]: 1σ 62% / 2σ 88% coverage over 8 scores",
		"stall [WARN]: plateau 9, EI at 5% of peak — 9 trials without improvement",
		"phase disc: 5 trials (0 failed), best 77.1s",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "diagnostics were disabled") {
		t.Errorf("diagnostics-disabled note printed for a diagnosed job:\n%s", text)
	}
}

func TestExplainJSON(t *testing.T) {
	ts := explainTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"explain", "job-000001", "-json", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	// Raw mode re-indents but must not reshape the document.
	for _, want := range []string{`"surrogate": "gp"`, `"exploitShare": 0.9`, `"severity": "warn"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("raw output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExplainErrors(t *testing.T) {
	ts := explainTestServer(t)
	if err := run([]string{"explain"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "usage:") {
		t.Errorf("missing job id error = %v", err)
	}
	err := run([]string{"explain", "job-999999", "-server", ts.URL}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("unknown job error = %v", err)
	}
}
