package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"seamlesstune/internal/telemetry"
)

// runTop implements `tunectl top`: a refreshing operations view over a
// tuneserve instance — job throughput, queue depth, and fsync p99 as
// sparklines from /v1/query, plus the firing alerts from /v1/alerts.
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl top", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	count := fs.Int("count", 0, "number of refreshes before exiting (0 = until interrupted)")
	window := fs.Duration("window", 5*time.Minute, "history window behind the sparklines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*server, "/")
	for i := 0; *count <= 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
			fmt.Fprint(out, "\033[H\033[2J") // clear between refreshes
		}
		if err := renderTop(base, *window, out); err != nil {
			return err
		}
	}
	return nil
}

// topRow is one metric line of the ops view.
type topRow struct {
	label  string
	metric string
	unit   string
	// scale converts stored sample values to display units.
	scale float64
}

var topRows = []topRow{
	{label: "jobs finished/s", metric: "jobs_finished_total", unit: "/s", scale: 1},
	{label: "queue depth", metric: "jobs_queue_depth", unit: "", scale: 1},
	{label: "trials/s", metric: "events_published_total", unit: "/s", scale: 1},
	{label: "fsync p99", metric: "wal_fsync_seconds:p99", unit: "ms", scale: 1000},
	{label: "slo burn checks/s", metric: "slo_checks_total", unit: "/s", scale: 1},
}

// renderTop draws one frame.
func renderTop(base string, window time.Duration, out io.Writer) error {
	now := time.Now()
	fmt.Fprintf(out, "tuneserve %s — %s (window %s)\n\n", base,
		now.Format("15:04:05"), window)
	for _, row := range topRows {
		series, err := queryRange(base, row.metric, now.Add(-window), now, window/48)
		if err != nil {
			return err
		}
		vals := flattenAvg(series)
		cur := 0.0
		if len(vals) > 0 {
			cur = vals[len(vals)-1]
		}
		fmt.Fprintf(out, "  %-18s %8.2f%-3s %s\n", row.label, cur*row.scale, row.unit, sparkline(vals, 48))
	}
	alerts, err := fetchAlerts(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nalerts: %d firing\n", alerts.Firing)
	for _, a := range alerts.Alerts {
		if a.State == telemetry.StateInactive {
			continue
		}
		since := ""
		if a.SinceNS > 0 {
			since = " for " + time.Since(time.Unix(0, a.SinceNS)).Truncate(time.Second).String()
		}
		fmt.Fprintf(out, "  [%s] %-22s %-8s value=%.4g%s\n", a.Severity, a.Name, a.State, a.Value, since)
	}
	return nil
}

// queryRange fetches one metric's history from /v1/query.
func queryRange(base, metric string, from, to time.Time, step time.Duration) ([]telemetry.SeriesResult, error) {
	if step <= 0 {
		step = time.Second
	}
	u := fmt.Sprintf("%s/v1/query?metric=%s&from=%d&to=%d&step=%s",
		base, url.QueryEscape(metric), from.Unix(), to.Unix(), step.Truncate(time.Millisecond))
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env remoteError
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error.Message != "" {
			return nil, fmt.Errorf("%s: %s", env.Error.Code, env.Error.Message)
		}
		return nil, fmt.Errorf("GET /v1/query: status %d", resp.StatusCode)
	}
	var qr struct {
		Series []telemetry.SeriesResult `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	return qr.Series, nil
}

// flattenAvg folds all matched series into one value list, summing
// same-window averages across series (labels collapse).
func flattenAvg(series []telemetry.SeriesResult) []float64 {
	byT := map[int64]float64{}
	var order []int64
	for _, sr := range series {
		for _, p := range sr.Points {
			if _, ok := byT[p.T]; !ok {
				order = append(order, p.T)
			}
			byT[p.T] += p.Avg
		}
	}
	// Points arrive time-ordered per series; across series the windows
	// align, so first-seen order is chronological.
	out := make([]float64, len(order))
	for i, t := range order {
		out[i] = byT[t]
	}
	return out
}

// sparkLevels are the eight block glyphs of a unicode sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals as a fixed-width unicode strip, scaled to the
// observed range (a flat series renders as its low block).
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return strings.Repeat("·", width)
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i := 0; i < width-len(vals); i++ {
		b.WriteRune('·') // pad missing history on the left
	}
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// fetchAlerts pulls /v1/alerts.
func fetchAlerts(base string) (alertsPayload, error) {
	var ap alertsPayload
	resp, err := http.Get(base + "/v1/alerts")
	if err != nil {
		return ap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ap, fmt.Errorf("GET /v1/alerts: status %d", resp.StatusCode)
	}
	return ap, json.NewDecoder(resp.Body).Decode(&ap)
}

// alertsPayload mirrors tuneserve's /v1/alerts response.
type alertsPayload struct {
	Firing int                     `json:"firing"`
	Alerts []telemetry.AlertStatus `json:"alerts"`
}

// runAlerts implements `tunectl alerts`: the rule table with lifecycle
// states, firing first.
func runAlerts(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl alerts", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	asJSON := fs.Bool("json", false, "print the raw alerts JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ap, err := fetchAlerts(strings.TrimSuffix(*server, "/"))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(ap)
	}
	fmt.Fprintf(out, "%d firing / %d rules\n", ap.Firing, len(ap.Alerts))
	for _, a := range ap.Alerts {
		marker := " "
		if a.State == telemetry.StateFiring {
			marker = "!"
		}
		fmt.Fprintf(out, "%s [%-8s] %-22s %-8s value=%-10.4g %s\n",
			marker, a.Severity, a.Name, a.State, a.Value, a.Detail)
	}
	return nil
}
