// Command tunectl runs one configuration-tuning session against the
// simulated cluster and prints the trajectory — the command-line face of
// the tuner package. With -server it instead acts as a client of a
// tuneserve instance: it submits the workload through the async job API
// and polls until the job finishes.
//
// Usage:
//
//	tunectl -workload pagerank -size 8 -tuner bayesopt -budget 30
//	tunectl -workload sort -tuner bayesopt -surrogate rffgp -budget 200
//	tunectl -workload sort -tuner bestconfig -budget 100 -params 30
//	tunectl -server http://localhost:8642 -tenant acme -workload sort -size 8
//	tunectl events job-000001 -server http://localhost:8642   # tail a job's telemetry
//	tunectl events job-000001 -json                           # raw JSONL, one event per line
//	tunectl explain job-000001 -server http://localhost:8642  # tuner decision process, calibration, stalls
//	tunectl storage -server http://localhost:8642             # persistence tier: segments, fsync latency
//	tunectl storage -compact                                  # force a WAL compaction, then report
//	tunectl top -server http://localhost:8642                 # live ops view: throughput, queue, fsync p99, alerts
//	tunectl alerts -server http://localhost:8642              # alert rules and their lifecycle states
//	tunectl -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tunectl:", err)
		os.Exit(1)
	}
}

func tunerByName(name string, space *confspace.Space) (tuner.Tuner, error) {
	switch name {
	case "random":
		return tuner.NewRandomSearch(space), nil
	case "latin":
		return tuner.NewLatinSearch(space, 0), nil
	case "hillclimb":
		return tuner.NewHillClimb(space), nil
	case "bayesopt":
		return tuner.NewBayesOpt(space), nil
	case "genetic":
		return tuner.NewGenetic(space), nil
	case "bestconfig":
		return tuner.NewBestConfig(space), nil
	case "rtree":
		return tuner.NewTreeSearch(space), nil
	case "qlearn":
		return tuner.NewQLearn(space), nil
	default:
		return nil, fmt.Errorf("unknown tuner %q (try -list)", name)
	}
}

var tunerNames = []string{"random", "latin", "hillclimb", "bayesopt", "genetic", "bestconfig", "rtree", "qlearn"}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "events" {
		return runEvents(args[1:], out)
	}
	if len(args) > 0 && args[0] == "explain" {
		return runExplain(args[1:], out)
	}
	if len(args) > 0 && args[0] == "storage" {
		return runStorage(args[1:], out)
	}
	if len(args) > 0 && args[0] == "top" {
		return runTop(args[1:], out)
	}
	if len(args) > 0 && args[0] == "alerts" {
		return runAlerts(args[1:], out)
	}
	fs := flag.NewFlagSet("tunectl", flag.ContinueOnError)
	wlName := fs.String("workload", "wordcount", "workload: "+strings.Join(workload.Names(), ", "))
	sizeGB := fs.Int64("size", 8, "input size in GB")
	tunerName := fs.String("tuner", "bayesopt", "tuning strategy: "+strings.Join(tunerNames, ", "))
	budget := fs.Int("budget", 30, "execution budget")
	instanceKey := fs.String("cluster", "nimbus/h1.4xlarge", "instance type (provider/name)")
	nodes := fs.Int("nodes", 4, "cluster size in nodes")
	params := fs.Int("params", 41, "number of Spark parameters to tune (1-41)")
	seed := fs.Int64("seed", 1, "random seed")
	interference := fs.String("interference", "none", "co-location level: none, low, medium, high")
	list := fs.Bool("list", false, "list workloads and tuners, then exit")
	verbose := fs.Bool("v", false, "print every trial")
	server := fs.String("server", "", "tuneserve base URL; when set, tune remotely via the job API")
	tenant := fs.String("tenant", "", "tenant name for remote tuning (required with -server)")
	poll := fs.Duration("poll", 500*time.Millisecond, "job polling interval in remote mode")
	surrogateKind := fs.String("surrogate", "",
		"surrogate model for bayesopt: "+strings.Join(surrogate.Names(), ", ")+" (default gp; local mode requires -tuner bayesopt)")
	prune := fs.Bool("prune", false,
		"significance-aware config-space pruning: analyze knob importances during the session and tune only the knobs that matter (requires -tuner bayesopt)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "workloads: ", strings.Join(workload.Names(), ", "))
		fmt.Fprintln(out, "tuners:    ", strings.Join(tunerNames, ", "))
		fmt.Fprintln(out, "surrogates:", strings.Join(surrogate.Names(), ", "))
		return nil
	}
	// Fail fast on unknown surrogates in both modes, rather than letting
	// the server (or a silently-degrading tuner) discover it later.
	if *surrogateKind != "" && !surrogate.Valid(*surrogateKind) {
		return fmt.Errorf("unknown surrogate %q (accepted: %s)", *surrogateKind, strings.Join(surrogate.Names(), ", "))
	}
	if *server != "" {
		return runRemote(out, strings.TrimSuffix(*server, "/"), *tenant, *wlName, *sizeGB, *surrogateKind, *prune, *poll)
	}

	w, err := workload.ByName(*wlName)
	if err != nil {
		return err
	}
	it, err := cloud.DefaultCatalog().Lookup(*instanceKey)
	if err != nil {
		return err
	}
	cluster := cloud.ClusterSpec{Instance: it, Count: *nodes}
	if err := cluster.Validate(); err != nil {
		return err
	}
	space := confspace.SparkSubspace(*params)
	tn, err := tunerByName(*tunerName, space)
	if err != nil {
		return err
	}
	if *prune {
		if _, ok := tn.(*tuner.BayesOpt); !ok {
			return fmt.Errorf("-prune applies to -tuner bayesopt, not %q", *tunerName)
		}
		pb := tuner.NewPrunedBayesOpt(space)
		pb.Prune = sensitivity.Config{Seed: stat.DeriveSeed(*seed, "prune")}
		pb.Hook = func(trial int, dec sensitivity.Decision) {
			if dec.Changed {
				fmt.Fprintf(out, "  prune @%d (%s): %d/%d dims active\n", trial, dec.Reason, len(dec.Active), space.Dim())
			}
		}
		tn = pb
	}
	if *surrogateKind != "" {
		sseed := stat.DeriveSeed(*seed, "surrogate")
		switch bo := tn.(type) {
		case *tuner.BayesOpt:
			bo.Surrogate = *surrogateKind
			bo.SurrogateSeed = sseed
		case *tuner.PrunedBayesOpt:
			bo.Surrogate = *surrogateKind
			bo.SurrogateSeed = sseed
		default:
			return fmt.Errorf("-surrogate applies to -tuner bayesopt, not %q", *tunerName)
		}
	}
	level, err := parseLevel(*interference)
	if err != nil {
		return err
	}

	env := cloud.NewEnvironment(level, *seed)
	rng := stat.NewRNG(*seed)
	size := *sizeGB << 30
	job := w.Job(size)
	obj := func(cfg confspace.Config) tuner.Measurement {
		res := spark.Run(job, spark.FromConfig(space, cfg), cluster, env.Next(), stat.Fork(rng))
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}

	fmt.Fprintf(out, "tuning %s (%dGB) on %s with %s, budget %d, %d params\n",
		w.Name(), *sizeGB, cluster, tn.Name(), *budget, space.Dim())

	res, err := tuner.Run(tn, obj, *budget, rng)
	if err != nil {
		return err
	}
	if pb, ok := tn.(*tuner.PrunedBayesOpt); ok {
		if sub := pb.Subspace(); sub != nil {
			fmt.Fprintf(out, "pruned search space: %s (pinned: %s)\n", sub.Describe(), strings.Join(sub.PrunedNames(), ", "))
		} else {
			fmt.Fprintf(out, "pruned search space: importances never converged, full space kept\n")
		}
	}
	if *verbose {
		for _, tr := range res.Trials {
			status := fmt.Sprintf("%.1fs", tr.Runtime)
			if tr.Failed {
				status = "FAILED"
			}
			fmt.Fprintf(out, "  run %3d: %-8s best so far %.1fs\n", tr.Index+1, status, res.BestSoFar[tr.Index])
		}
	}
	if !res.Found {
		return fmt.Errorf("no configuration succeeded in %d runs", *budget)
	}
	defRes := spark.Run(job, spark.FromConfig(space, space.Default()), cluster, env.Next(), stat.Fork(rng))
	fmt.Fprintf(out, "best runtime: %.1fs after %d executions (tuning cost $%.2f)\n",
		res.Best.Runtime, len(res.Trials), res.TotalCost)
	if !defRes.Failed && defRes.RuntimeS > 0 {
		fmt.Fprintf(out, "default config runtime: %.1fs (improvement %.0f%%)\n",
			defRes.RuntimeS, (1-res.Best.Runtime/defRes.RuntimeS)*100)
	}
	fmt.Fprintf(out, "best configuration:\n")
	for _, line := range strings.Split(space.FormatConfig(res.Best.Config), " ") {
		fmt.Fprintf(out, "  %s\n", line)
	}
	return nil
}

func parseLevel(s string) (cloud.InterferenceLevel, error) {
	switch s {
	case "none":
		return cloud.InterferenceNone, nil
	case "low":
		return cloud.InterferenceLow, nil
	case "medium":
		return cloud.InterferenceMedium, nil
	case "high":
		return cloud.InterferenceHigh, nil
	default:
		return 0, fmt.Errorf("unknown interference level %q", s)
	}
}
