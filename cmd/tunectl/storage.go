package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"seamlesstune/internal/obs"
	"seamlesstune/internal/storage"
)

// runStorage implements `tunectl storage`: it reports the server's
// persistence tier — backend, segment layout, append counters, queue
// pressure, and fsync latency quantiles pulled from the JSON metrics
// exposition — and with -compact forces a compaction first, so operators
// can fold cold segments before a planned restart.
func runStorage(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl storage", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	compact := fs.Bool("compact", false, "force a compaction before reporting")
	asJSON := fs.Bool("json", false, "print the raw stats JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimSuffix(*server, "/")

	var st storage.Stats
	if *compact {
		resp, err := http.Post(base+"/v1/admin/compact", "application/json", nil)
		if err != nil {
			return err
		}
		if err := decodeStats(resp, &st); err != nil {
			return fmt.Errorf("compacting: %w", err)
		}
		fmt.Fprintf(out, "compaction complete (%d total)\n", st.Compactions)
	} else {
		resp, err := http.Get(base + "/v1/admin/storage")
		if err != nil {
			return err
		}
		if err := decodeStats(resp, &st); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}

	fmt.Fprintf(out, "backend: %s\n", st.Backend)
	switch st.Backend {
	case "wal":
		fmt.Fprintf(out, "  dir:         %s\n", st.Dir)
		fmt.Fprintf(out, "  segments:    %d (%d sealed, active #%d)\n",
			st.Segments, st.SealedSegments, st.ActiveSegment)
		fmt.Fprintf(out, "  disk:        %s\n", formatBytes(st.DiskBytes))
		fmt.Fprintf(out, "  appended:    %d records, %d events (%d dropped)\n",
			st.Records, st.Events, st.EventsDropped)
		fmt.Fprintf(out, "  queue:       %d/%d", st.QueueDepth, st.QueueCap)
		if st.Saturated {
			fmt.Fprintf(out, "  SATURATED — submissions shedding")
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "  fsyncs:      %d\n", st.Fsyncs)
		fmt.Fprintf(out, "  compactions: %d", st.Compactions)
		if st.LastCompactionUnix > 0 {
			fmt.Fprintf(out, " (last %s)", time.Unix(st.LastCompactionUnix, 0).UTC().Format(time.RFC3339))
		}
		fmt.Fprintln(out)
		fmt.Fprintf(out, "  recovery:    %d records, %d events in %.3fs\n",
			st.RecoveredRecords, st.RecoveredEvents, st.RecoverySeconds)
		if err := printFsyncQuantiles(base, out); err != nil {
			return err
		}
	case "snapshot":
		fmt.Fprintf(out, "  state:    %s\n", st.Path)
		fmt.Fprintf(out, "  appended: %d records since start\n", st.Records)
	default:
		fmt.Fprintf(out, "  (no persistence)\n")
	}
	if st.Errors > 0 {
		fmt.Fprintf(out, "  errors:      %d\n", st.Errors)
	}
	return nil
}

// printFsyncQuantiles reads the JSON metrics exposition — the only one
// carrying sketch quantiles — and reports fsync latency percentiles.
func printFsyncQuantiles(base string, out io.Writer) error {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics?format=json: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding metrics snapshot: %w", err)
	}
	for _, f := range snap.Families {
		if f.Name != "wal_fsync_seconds" {
			continue
		}
		for _, s := range f.Series {
			if len(s.Quantiles) == 0 {
				continue
			}
			keys := make([]string, 0, len(s.Quantiles))
			for k := range s.Quantiles {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var parts []string
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s %.3fms", k, s.Quantiles[k]*1000))
			}
			fmt.Fprintf(out, "  fsync lat:   %s (n=%d)\n", strings.Join(parts, ", "), s.Count)
		}
	}
	return nil
}

// decodeStats decodes a storage.Stats response, translating the error
// envelope on non-200s.
func decodeStats(resp *http.Response, st *storage.Stats) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env remoteError
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error.Message != "" {
			return fmt.Errorf("%s: %s", env.Error.Code, env.Error.Message)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(st)
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
