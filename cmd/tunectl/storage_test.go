package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const cannedStorageStats = `{
  "backend": "wal", "dir": "/var/lib/tuneserve", "records": 1200, "events": 3400,
  "eventsDropped": 2, "segments": 3, "sealedSegments": 2, "activeSegment": 7,
  "diskBytes": 5242880, "queueDepth": 12, "queueCap": 1024, "fsyncs": 480,
  "compactions": 4, "lastCompactionUnix": 1754600000,
  "recoveredRecords": 900, "recoveredEvents": 256, "recoverySeconds": 0.012
}`

const cannedMetricsJSON = `{
  "families": [
    {"name": "wal_fsync_seconds", "kind": "histogram", "series": [
      {"count": 480, "sum": 0.9,
       "quantiles": {"p50": 0.0011, "p90": 0.0025, "p99": 0.0092}}
    ]},
    {"name": "wal_appends_total", "kind": "counter", "series": [{"value": 4600}]}
  ]
}`

func storageTestServer(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	compactions := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/admin/storage":
			fmt.Fprint(w, cannedStorageStats)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/admin/compact":
			compactions++
			fmt.Fprint(w, cannedStorageStats)
		case r.URL.Path == "/metrics" && r.URL.Query().Get("format") == "json":
			fmt.Fprint(w, cannedMetricsJSON)
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such route"}}`)
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &compactions
}

func TestStoragePretty(t *testing.T) {
	ts, compactions := storageTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"storage", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"backend: wal",
		"segments:    3 (2 sealed, active #7)",
		"disk:        5.0 MiB",
		"appended:    1200 records, 3400 events (2 dropped)",
		"queue:       12/1024",
		"fsyncs:      480",
		"compactions: 4",
		"recovery:    900 records, 256 events in 0.012s",
		"p50 1.100ms, p90 2.500ms, p99 9.200ms (n=480)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if *compactions != 0 {
		t.Errorf("plain report triggered %d compactions", *compactions)
	}
}

func TestStorageCompact(t *testing.T) {
	ts, compactions := storageTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"storage", "-server", ts.URL, "-compact"}, &out); err != nil {
		t.Fatal(err)
	}
	if *compactions != 1 {
		t.Errorf("compactions = %d, want 1", *compactions)
	}
	if !strings.Contains(out.String(), "compaction complete (4 total)") {
		t.Errorf("output = %s", out.String())
	}
}

func TestStorageJSON(t *testing.T) {
	ts, _ := storageTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"storage", "-server", ts.URL, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"backend": "wal"`) {
		t.Errorf("json output = %s", out.String())
	}
}

func TestStorageErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"unavailable","message":"backend closed"}}`)
	}))
	t.Cleanup(ts.Close)
	err := run([]string{"storage", "-server", ts.URL}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unavailable: backend closed") {
		t.Errorf("err = %v", err)
	}
}
