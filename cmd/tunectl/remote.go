package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// remoteJob mirrors the job snapshot tuneserve returns; the result stays
// raw so tunectl prints exactly what the server computed.
type remoteJob struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
}

// remoteError is tuneserve's {"error":{"code","message"}} envelope.
type remoteError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// runRemote submits the workload to a tuneserve instance via the async
// job API and polls until the job is terminal.
func runRemote(out io.Writer, server, tenant, wlName string, sizeGB int64, surrogateKind string, pruning bool, poll time.Duration) error {
	if tenant == "" {
		return fmt.Errorf("-tenant is required with -server")
	}
	payload := map[string]any{
		"tenant":   tenant,
		"workload": wlName,
		"inputGB":  sizeGB,
	}
	if surrogateKind != "" {
		payload["surrogate"] = surrogateKind
	}
	if pruning {
		payload["pruning"] = true
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := http.Post(server+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	job, err := decodeJob(resp, http.StatusAccepted)
	if err != nil {
		return fmt.Errorf("submitting job: %w", err)
	}
	fmt.Fprintf(out, "submitted %s (tenant %s, %s %dGB)\n", job.ID, tenant, wlName, sizeGB)

	for {
		switch job.State {
		case "done":
			var pretty bytes.Buffer
			if err := json.Indent(&pretty, job.Result, "", "  "); err != nil {
				return err
			}
			fmt.Fprintf(out, "job %s done:\n%s\n", job.ID, pretty.String())
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", job.ID, job.Error)
		}
		time.Sleep(poll)
		resp, err := http.Get(server + "/v1/jobs/" + job.ID)
		if err != nil {
			return err
		}
		job, err = decodeJob(resp, http.StatusOK)
		if err != nil {
			return fmt.Errorf("polling job: %w", err)
		}
	}
}

// decodeJob reads a job snapshot, surfacing the server's error envelope
// on any unexpected status.
func decodeJob(resp *http.Response, wantStatus int) (remoteJob, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return remoteJob{}, err
	}
	if resp.StatusCode != wantStatus {
		var env remoteError
		if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
			return remoteJob{}, fmt.Errorf("%s: %s (%s)", resp.Status, env.Error.Message, env.Error.Code)
		}
		return remoteJob{}, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var job remoteJob
	if err := json.Unmarshal(raw, &job); err != nil {
		return remoteJob{}, err
	}
	return job, nil
}
