package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seamlesstune/internal/telemetry"
)

// fakeTelemetryServer serves canned /v1/query and /v1/alerts responses
// shaped like tuneserve's.
func fakeTelemetryServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		metric := r.URL.Query().Get("metric")
		if metric == "" {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":{"code":"invalid_argument","message":"metric is required"}}`)
			return
		}
		now := time.Now().UnixMilli()
		fmt.Fprintf(w, `{"metric":%q,"series":[`+
			`{"metric":%q,"labels":{"tenant":"acme"},"points":[{"t":%d,"avg":1.5,"min":1,"max":2,"last":2,"count":4},{"t":%d,"avg":2.5,"min":2,"max":3,"last":3,"count":4}]},`+
			`{"metric":%q,"labels":{"tenant":"beta"},"points":[{"t":%d,"avg":0.5,"min":0,"max":1,"last":1,"count":4}]}]}`,
			metric, metric, now-10_000, now-5_000, metric, now-10_000)
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, `{"firing":1,"alerts":[`+
			`{"name":"fsync-p99-high","severity":"warn","kind":"threshold","state":"firing","sinceNS":%d,"value":0.12,"detail":"wal_fsync_seconds:p99 > 0.05 over 1m0s"},`+
			`{"name":"job-queue-backlog","severity":"warn","kind":"threshold","state":"inactive","value":0,"detail":"jobs_queue_depth > 32 over 1m0s"}]}`,
			time.Now().Add(-time.Minute).UnixNano())
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRunTopRendersFrame(t *testing.T) {
	srv := fakeTelemetryServer(t)
	var out strings.Builder
	if err := runTop([]string{"-server", srv.URL, "-count", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"jobs finished/s", "queue depth", "fsync p99",
		"alerts: 1 firing", "fsync-p99-high", "firing",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
	// Same-window averages sum across series: 1.5 + 0.5 = 2.0 in the
	// first window, so the current value column reflects the last window.
	if !strings.Contains(got, "2.50") {
		t.Errorf("current value not rendered:\n%s", got)
	}
	// The inactive rule stays out of the alert list.
	if strings.Contains(got, "job-queue-backlog") {
		t.Errorf("inactive rule rendered:\n%s", got)
	}
}

func TestRunAlertsTableAndJSON(t *testing.T) {
	srv := fakeTelemetryServer(t)
	var out strings.Builder
	if err := runAlerts([]string{"-server", srv.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1 firing / 2 rules") {
		t.Errorf("summary line wrong:\n%s", got)
	}
	if !strings.Contains(got, "! [warn") {
		t.Errorf("firing marker missing:\n%s", got)
	}
	if !strings.Contains(got, "job-queue-backlog") {
		t.Errorf("table omits inactive rules:\n%s", got)
	}

	out.Reset()
	if err := runAlerts([]string{"-server", srv.URL, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"firing": 1`) {
		t.Errorf("json output wrong:\n%s", out.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 8); got != strings.Repeat("·", 8) {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3}, 8)
	if len([]rune(got)) != 8 {
		t.Errorf("width = %d runes, want 8: %q", len([]rune(got)), got)
	}
	if !strings.HasPrefix(got, "····") {
		t.Errorf("missing left padding: %q", got)
	}
	if !strings.HasSuffix(got, "█") {
		t.Errorf("max value should render full block: %q", got)
	}
	// Flat series renders low blocks, not a divide-by-zero artifact.
	flat := sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Errorf("flat series = %q", flat)
	}
	// Longer than width keeps the newest values.
	long := sparkline([]float64{9, 0, 0, 0}, 3)
	if strings.ContainsRune(long, '█') {
		t.Errorf("stale max leaked into window: %q", long)
	}
}

func TestFlattenAvg(t *testing.T) {
	series := []telemetry.SeriesResult{
		{Points: []telemetry.Point{{T: 1000, Avg: 1}, {T: 2000, Avg: 2}}},
		{Points: []telemetry.Point{{T: 1000, Avg: 10}, {T: 2000, Avg: 20}}},
	}
	got := flattenAvg(series)
	if len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Errorf("flattenAvg = %v, want [11 22]", got)
	}
}

func TestQueryRangeErrorEnvelope(t *testing.T) {
	srv := fakeTelemetryServer(t)
	if _, err := queryRange(srv.URL, "", time.Now().Add(-time.Minute), time.Now(), time.Second); err == nil ||
		!strings.Contains(err.Error(), "metric is required") {
		t.Errorf("error envelope not decoded: %v", err)
	}
}
