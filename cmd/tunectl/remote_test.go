package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// stubServe emulates tuneserve's job API: one submission that reports
// running once before reaching the given terminal state.
func stubServe(t *testing.T, terminalState, errMsg string) *httptest.Server {
	t.Helper()
	var mu sync.Mutex
	polls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req map[string]any
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad submit body: %v", err)
		}
		if req["tenant"] != "acme" || req["workload"] != "sort" {
			t.Errorf("unexpected submission: %v", req)
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "job-000001", "state": "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "job-000001" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]string{"code": "not_found", "message": "no such job"},
			})
			return
		}
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		job := map[string]any{"id": "job-000001", "state": "running"}
		if n > 1 {
			job["state"] = terminalState
			if terminalState == "done" {
				job["result"] = map[string]any{"cluster": "4x nimbus/g5.2xlarge", "tunedRuntimeS": 12.5}
			} else {
				job["error"] = errMsg
			}
		}
		json.NewEncoder(w).Encode(job)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteTuneSucceeds(t *testing.T) {
	srv := stubServe(t, "done", "")
	var out bytes.Buffer
	err := run([]string{
		"-server", srv.URL, "-tenant", "acme", "-workload", "sort", "-size", "8", "-poll", "1ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"submitted job-000001", "job job-000001 done", "tunedRuntimeS", "12.5"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// -surrogate rides along in the submission body; omitting it keeps the
// field out entirely so the server default applies.
func TestRemoteTuneForwardsSurrogate(t *testing.T) {
	var mu sync.Mutex
	var bodies []map[string]any
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req map[string]any
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad submit body: %v", err)
		}
		mu.Lock()
		bodies = append(bodies, req)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{
			"id": "job-000001", "state": "done",
			"result": map[string]any{"surrogate": "forest"},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	var out bytes.Buffer
	args := []string{"-server", srv.URL, "-tenant", "acme", "-workload", "sort", "-size", "8", "-poll", "1ms"}
	if err := run(append(args, "-surrogate", "forest"), &out); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if got := bodies[0]["surrogate"]; got != "forest" {
		t.Errorf("submission surrogate = %v, want forest", got)
	}
	if _, present := bodies[1]["surrogate"]; present {
		t.Errorf("bare submission carried a surrogate field: %v", bodies[1])
	}
	if !strings.Contains(out.String(), `"surrogate": "forest"`) {
		t.Errorf("result output missing surrogate echo:\n%s", out.String())
	}
}

func TestRemoteTuneReportsFailure(t *testing.T) {
	srv := stubServe(t, "failed", "no configuration succeeded")
	var out bytes.Buffer
	err := run([]string{
		"-server", srv.URL, "-tenant", "acme", "-workload", "sort", "-size", "8", "-poll", "1ms",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "no configuration succeeded") {
		t.Fatalf("err = %v, want job failure", err)
	}
}

func TestRemoteTuneSurfacesErrorEnvelope(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]string{"code": "invalid_argument", "message": "unknown workload"},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	var out bytes.Buffer
	err := run([]string{"-server", srv.URL, "-tenant", "acme", "-workload", "sort", "-size", "8"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want envelope message", err)
	}
	if !strings.Contains(err.Error(), "invalid_argument") {
		t.Errorf("err = %v, want envelope code", err)
	}
}

func TestRemoteTuneRequiresTenant(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-server", "http://localhost:0", "-workload", "sort"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-tenant") {
		t.Fatalf("err = %v, want tenant requirement", err)
	}
}
