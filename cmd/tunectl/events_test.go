package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seamlesstune/internal/obs"
)

// cannedEvents is a miniature session stream, including the diagnostics
// families (decide, model_health, stall).
func cannedEvents() []obs.Event {
	return []obs.Event{
		{Seq: 1, TimeNS: 1, Type: obs.EventSessionStart, Session: "job-000001",
			Tenant: "acme", Workload: "sort", BudgetTrials: 5},
		{Seq: 2, TimeNS: 2, Type: obs.EventDecide, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 1, Surrogate: "gp", Candidates: 120,
			Rank: 1, PredMean: 4.8, PredStd: 0.12, EI: 0.05, EIExploit: 0.03, EIExplore: 0.02,
			TopK: "1:0.05(0.03+0.02)"},
		{Seq: 3, TimeNS: 3, Type: obs.EventTrial, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 1, RuntimeS: 120.5, Objective: 120.5,
			BestSoFar: 120.5, Cluster: "4x nimbus/h1.4xlarge", CostUSD: 0.05, SpendUSD: 0.05,
			Attainment: 0.5},
		{Seq: 4, TimeNS: 4, Type: obs.EventTrial, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 2, Failed: true, CostUSD: 0.01, SpendUSD: 0.06},
		{Seq: 5, TimeNS: 5, Type: obs.EventModelHealth, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 2, Scores: 10, Coverage1: 0.7,
			Coverage2: 0.95, RMSE: 0.12, NLPD: -0.3, Severity: "ok",
			Detail: "calibration within tolerance"},
		{Seq: 6, TimeNS: 6, Type: obs.EventStall, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 2, Plateau: 9, EI: 0.002, EIPeak: 0.05,
			EIDecay: 0.04, Severity: "warn", Detail: "9 trials without improvement"},
		{Seq: 7, TimeNS: 7, Type: obs.EventSLOViolation, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Detail: "tuning spend $0.0600 exceeds budget $0.0500"},
		{Seq: 8, TimeNS: 8, Type: obs.EventSessionEnd, Session: "job-000001", Tenant: "acme",
			Workload: "sort", SpendUSD: 0.06, Detail: "ok"},
	}
}

// sseTestServer serves the canned events as one SSE stream on the job
// events route, honoring ?from=, and reports the job as done on the
// status route (so the tail knows a closed stream is the end).
func sseTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-000001/events":
			w.Header().Set("Content-Type", "text/event-stream")
			from := uint64(0)
			fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
			var buf []byte
			for _, e := range cannedEvents() {
				if e.Seq <= from {
					continue
				}
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, e.AppendJSONL(buf[:0]))
			}
		case "/v1/jobs/job-000001":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"id":"job-000001","state":"done"}`)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such job"}}`)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestEventsPretty(t *testing.T) {
	ts := sseTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"events", "job-000001", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"session job-000001 started: acme/sort, budget 5 trials",
		"decide [cloud] trial 1: EI 0.05 (exploit 0.03 + explore 0.02) rank 1/120 via gp",
		"trial   1 [cloud] 120.5s",
		"best 120.5s",
		"on 4x nimbus/h1.4xlarge",
		"FAILED",
		"model health [cloud] OK: 1σ 70% / 2σ 95% coverage",
		"over 10 scores — calibration within tolerance",
		"stall [cloud] WARN: plateau 9, EI at 4% of peak — 9 trials without improvement",
		"SLO VIOLATION: tuning spend $0.0600 exceeds budget $0.0500",
		"session job-000001 ended: ok (total spend $0.0600)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if lines := strings.Count(strings.TrimSpace(text), "\n") + 1; lines != len(cannedEvents()) {
		t.Errorf("got %d lines, want %d:\n%s", lines, len(cannedEvents()), text)
	}
}

func TestEventsJSON(t *testing.T) {
	ts := sseTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"events", "job-000001", "-json", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(cannedEvents()) {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), len(cannedEvents()))
	}
	// Raw relay: each line must be byte-identical to the wire encoding.
	var buf []byte
	for i, e := range cannedEvents() {
		if want := string(e.AppendJSONL(buf[:0])); lines[i] != want {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
}

func TestEventsErrors(t *testing.T) {
	ts := sseTestServer(t)
	if err := run([]string{"events"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "usage:") {
		t.Errorf("missing job id error = %v", err)
	}
	err := run([]string{"events", "job-999999", "-server", ts.URL}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Errorf("unknown job error = %v", err)
	}
}

// TestEventsReconnectGapless drops the stream mid-session and checks the
// tail resumes from the last acknowledged sequence number: every event
// exactly once, in order, with the resume request carrying both ?from=
// and the Last-Event-ID header.
func TestEventsReconnectGapless(t *testing.T) {
	oldDelay := reconnectDelay
	reconnectDelay = time.Millisecond
	defer func() { reconnectDelay = oldDelay }()

	const dropAfter = 3 // close the first stream after this many events
	var (
		mu       sync.Mutex
		conns    int
		resumeQ  string
		resumeID string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/job-000001/events":
			mu.Lock()
			conns++
			first := conns == 1
			if !first && resumeQ == "" {
				resumeQ = r.URL.Query().Get("from")
				resumeID = r.Header.Get("Last-Event-ID")
			}
			mu.Unlock()
			w.Header().Set("Content-Type", "text/event-stream")
			from := uint64(0)
			fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
			sent := 0
			var buf []byte
			for _, e := range cannedEvents() {
				if e.Seq <= from {
					continue
				}
				fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, e.AppendJSONL(buf[:0]))
				sent++
				if first && sent == dropAfter {
					return // simulate a dropped connection
				}
			}
		case "/v1/jobs/job-000001":
			// Still running until the stream has been served in full.
			mu.Lock()
			state := "running"
			if conns >= 2 {
				state = "done"
			}
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"id":"job-000001","state":%q}`, state)
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"events", "job-000001", "-json", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(cannedEvents()) {
		t.Fatalf("resumed tail printed %d events, want %d (no gaps, no duplicates):\n%s",
			len(lines), len(cannedEvents()), out.String())
	}
	var buf []byte
	for i, e := range cannedEvents() {
		if want := string(e.AppendJSONL(buf[:0])); lines[i] != want {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if conns < 2 {
		t.Fatalf("expected a reconnect, got %d connection(s)", conns)
	}
	if want := fmt.Sprint(dropAfter); resumeQ != want || resumeID != want {
		t.Errorf("resume request: from=%q Last-Event-ID=%q, want both %q", resumeQ, resumeID, want)
	}
}

// TestEventsGivesUpWhenUnreachable bounds the retry loop: a server that
// never answers must fail after maxReconnectFailures attempts.
func TestEventsGivesUpWhenUnreachable(t *testing.T) {
	oldDelay := reconnectDelay
	reconnectDelay = time.Millisecond
	defer func() { reconnectDelay = oldDelay }()

	err := run([]string{"events", "job-000001", "-server", "http://127.0.0.1:1"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("expected unreachable error, got %v", err)
	}
}
