package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"seamlesstune/internal/obs"
)

// cannedEvents is a miniature session stream.
func cannedEvents() []obs.Event {
	return []obs.Event{
		{Seq: 1, TimeNS: 1, Type: obs.EventSessionStart, Session: "job-000001",
			Tenant: "acme", Workload: "sort", BudgetTrials: 5},
		{Seq: 2, TimeNS: 2, Type: obs.EventTrial, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 1, RuntimeS: 120.5, Objective: 120.5,
			BestSoFar: 120.5, Cluster: "4x nimbus/h1.4xlarge", CostUSD: 0.05, SpendUSD: 0.05,
			Attainment: 0.5},
		{Seq: 3, TimeNS: 3, Type: obs.EventTrial, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Phase: "cloud", Trial: 2, Failed: true, CostUSD: 0.01, SpendUSD: 0.06},
		{Seq: 4, TimeNS: 4, Type: obs.EventSLOViolation, Session: "job-000001", Tenant: "acme",
			Workload: "sort", Detail: "tuning spend $0.0600 exceeds budget $0.0500"},
		{Seq: 5, TimeNS: 5, Type: obs.EventSessionEnd, Session: "job-000001", Tenant: "acme",
			Workload: "sort", SpendUSD: 0.06, Detail: "ok"},
	}
}

// sseTestServer serves the canned events as one SSE stream on the job
// events route, honoring ?from=.
func sseTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/job-000001/events" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":{"code":"not_found","message":"no such job"}}`)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		var buf []byte
		for _, e := range cannedEvents() {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, e.AppendJSONL(buf[:0]))
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestEventsPretty(t *testing.T) {
	ts := sseTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"events", "job-000001", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"session job-000001 started: acme/sort, budget 5 trials",
		"trial   1 [cloud] 120.5s",
		"best 120.5s",
		"on 4x nimbus/h1.4xlarge",
		"FAILED",
		"SLO VIOLATION: tuning spend $0.0600 exceeds budget $0.0500",
		"session job-000001 ended: ok (total spend $0.0600)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	if lines := strings.Count(strings.TrimSpace(text), "\n") + 1; lines != len(cannedEvents()) {
		t.Errorf("got %d lines, want %d:\n%s", lines, len(cannedEvents()), text)
	}
}

func TestEventsJSON(t *testing.T) {
	ts := sseTestServer(t)
	var out bytes.Buffer
	if err := run([]string{"events", "job-000001", "-json", "-server", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(cannedEvents()) {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), len(cannedEvents()))
	}
	// Raw relay: each line must be byte-identical to the wire encoding.
	var buf []byte
	for i, e := range cannedEvents() {
		if want := string(e.AppendJSONL(buf[:0])); lines[i] != want {
			t.Errorf("line %d = %s, want %s", i, lines[i], want)
		}
	}
}

func TestEventsErrors(t *testing.T) {
	ts := sseTestServer(t)
	if err := run([]string{"events"}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "usage:") {
		t.Errorf("missing job id error = %v", err)
	}
	err := run([]string{"events", "job-999999", "-server", ts.URL}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "not_found") {
		t.Errorf("unknown job error = %v", err)
	}
}
