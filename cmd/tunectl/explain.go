package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// explainDoc mirrors tuneserve's /v1/jobs/{id}/explain payload.
type explainDoc struct {
	Job         string `json:"job"`
	State       string `json:"state"`
	Diagnostics bool   `json:"diagnostics"`
	Surrogate   string `json:"surrogate"`
	Events      int    `json:"events"`
	Phases      []struct {
		Phase        string  `json:"phase"`
		Trials       int     `json:"trials"`
		Failed       int     `json:"failed"`
		BestSoFar    float64 `json:"bestSoFar"`
		Plateau      int     `json:"plateau"`
		Decisions    int     `json:"decisions"`
		LastEI       float64 `json:"lastEI"`
		PeakEI       float64 `json:"peakEI"`
		EIDecay      float64 `json:"eiDecay"`
		ExploitShare float64 `json:"exploitShare"`
		Calibration  *struct {
			Scores    int     `json:"scores"`
			Coverage1 float64 `json:"coverage1"`
			Coverage2 float64 `json:"coverage2"`
			RMSE      float64 `json:"rmse"`
			NLPD      float64 `json:"nlpd"`
			Severity  string  `json:"severity"`
			Detail    string  `json:"detail"`
		} `json:"calibration"`
		Stall *struct {
			Plateau  int     `json:"plateau"`
			EIDecay  float64 `json:"eiDecay"`
			Severity string  `json:"severity"`
			Detail   string  `json:"detail"`
		} `json:"stall"`
	} `json:"phases"`
}

// runExplain implements `tunectl explain <job-id>`: it fetches the
// tuner-introspection summary from tuneserve and renders it as a short
// operator report — per-phase search progress, acquisition decay,
// surrogate calibration, and stall verdicts. -json prints the raw
// document instead.
func runExplain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tunectl explain", flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8642", "tuneserve base URL")
	asJSON := fs.Bool("json", false, "print the raw explain document")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id := fs.Arg(0)
	if fs.NArg() > 1 {
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return err
		}
	}
	if id == "" {
		return fmt.Errorf("usage: tunectl explain <job-id> [-server URL] [-json]")
	}
	url := strings.TrimSuffix(*server, "/") + "/v1/jobs/" + id + "/explain"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var env remoteError
		if json.Unmarshal(raw, &env) == nil && env.Error.Message != "" {
			return fmt.Errorf("%s: %s (%s)", resp.Status, env.Error.Message, env.Error.Code)
		}
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if *asJSON {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, raw, "", "  "); err != nil {
			return err
		}
		fmt.Fprintln(out, pretty.String())
		return nil
	}
	var doc explainDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("malformed explain document: %w", err)
	}
	printExplain(out, doc)
	return nil
}

// printExplain renders the explain document for humans.
func printExplain(out io.Writer, doc explainDoc) {
	fmt.Fprintf(out, "job %s (%s)", doc.Job, doc.State)
	if doc.Surrogate != "" {
		fmt.Fprintf(out, ", surrogate %s", doc.Surrogate)
	}
	fmt.Fprintf(out, ", %d events retained\n", doc.Events)
	if !doc.Diagnostics {
		fmt.Fprintln(out, "diagnostics were disabled for this job; only trial-level telemetry is available")
	}
	if len(doc.Phases) == 0 {
		fmt.Fprintln(out, "no per-phase telemetry retained (job too old for the event ring, or not started)")
		return
	}
	for _, p := range doc.Phases {
		fmt.Fprintf(out, "\nphase %s: %d trials (%d failed)", p.Phase, p.Trials, p.Failed)
		if p.BestSoFar > 0 {
			fmt.Fprintf(out, ", best %.1fs", p.BestSoFar)
		}
		if p.Plateau > 0 {
			fmt.Fprintf(out, ", %d since improvement", p.Plateau)
		}
		fmt.Fprintln(out)
		if p.Decisions > 0 {
			fmt.Fprintf(out, "  acquisition: %d EI-guided decisions, last EI %.4g (peak %.4g, decayed to %.0f%%), exploit share %.0f%%\n",
				p.Decisions, p.LastEI, p.PeakEI, p.EIDecay*100, p.ExploitShare*100)
		}
		if c := p.Calibration; c != nil {
			fmt.Fprintf(out, "  calibration [%s]: 1σ %.0f%% / 2σ %.0f%% coverage over %d scores, rmse %.3f, nlpd %.3f",
				strings.ToUpper(c.Severity), c.Coverage1*100, c.Coverage2*100, c.Scores, c.RMSE, c.NLPD)
			if c.Detail != "" {
				fmt.Fprintf(out, " — %s", c.Detail)
			}
			fmt.Fprintln(out)
		}
		if s := p.Stall; s != nil {
			fmt.Fprintf(out, "  stall [%s]: plateau %d, EI at %.0f%% of peak", strings.ToUpper(s.Severity), s.Plateau, s.EIDecay*100)
			if s.Detail != "" {
				fmt.Fprintf(out, " — %s", s.Detail)
			}
			fmt.Fprintln(out)
		}
	}
}
