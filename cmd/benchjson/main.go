// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark runs can be committed and diffed
// (make bench-substrate writes BENCH_substrate.json with it). It echoes
// the raw benchmark lines to stderr so progress stays visible.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Sample is one benchmark result line.
type Sample struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric values by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Samples []Sample `json:"samples"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			fmt.Fprintln(os.Stderr, line)
			s, ok := parseBenchLine(line)
			if ok {
				rep.Samples = append(rep.Samples, s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// parseBenchLine parses e.g.
//
//	BenchmarkGPFitPredict-8   500   123456 ns/op   2048 B/op   17 allocs/op
//
// including any custom "value unit" metric pairs.
func parseBenchLine(line string) (Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Sample{}, false
	}
	var s Sample
	s.Name = fields[0]
	s.Procs = 1
	if i := strings.LastIndex(s.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(s.Name[i+1:]); err == nil {
			s.Name, s.Procs = s.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Sample{}, false
	}
	s.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Sample{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			s.NsPerOp = val
		case "B/op":
			v := int64(val)
			s.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			s.AllocsPerOp = &v
		default:
			if s.Extra == nil {
				s.Extra = map[string]float64{}
			}
			s.Extra[unit] = val
		}
	}
	return s, true
}
