// Command benchguard compares a fresh benchmark run (benchjson output)
// against a committed baseline and fails when a guarded benchmark's
// median ns/op regressed beyond the allowed fraction — the CI tripwire
// that keeps the observability hot paths within their budget.
//
// Usage:
//
//	benchguard -old BENCH_obs.json -new fresh.json \
//	    -guard 'BenchmarkObsOverhead/(counter|histogram|span)$' -max-regress 0.25
//
// Benchmarks present in the fresh run but absent from the baseline are
// reported and skipped (new benchmarks are not regressions); benchmarks
// only in the baseline are ignored (deletions are reviewed in the diff
// of the committed file itself). Medians, not means, so one noisy sample
// out of -count=5 cannot fail or mask a run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// sample mirrors the benchjson schema (the fields benchguard needs).
type sample struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type report struct {
	Samples []sample `json:"samples"`
}

func main() {
	fs := flag.NewFlagSet("benchguard", flag.ExitOnError)
	oldPath := fs.String("old", "", "committed baseline (benchjson output)")
	newPath := fs.String("new", "", "fresh run (benchjson output)")
	guardPat := fs.String("guard", ".*", "regexp of benchmark names to guard")
	maxRegress := fs.Float64("max-regress", 0.25, "max allowed fractional ns/op regression")
	fs.Parse(os.Args[1:])
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -old and -new are required")
		os.Exit(2)
	}
	regressions, err := guard(*oldPath, *newPath, *guardPat, *maxRegress, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Printf("FAIL: %d guarded benchmark(s) regressed more than %.0f%%\n", regressions, *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("ok: no guarded benchmark regressed")
}

// medians loads a benchjson file and reduces repeated samples of each
// benchmark to their median ns/op.
func medians(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string][]float64)
	for _, s := range rep.Samples {
		byName[s.Name] = append(byName[s.Name], s.NsPerOp)
	}
	out := make(map[string]float64, len(byName))
	for name, vals := range byName {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			out[name] = vals[n/2]
		} else {
			out[name] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return out, nil
}

// guard compares the two files and reports each guarded benchmark's
// delta, returning how many regressed beyond maxRegress.
func guard(oldPath, newPath, guardPat string, maxRegress float64, out io.Writer) (int, error) {
	re, err := regexp.Compile(guardPat)
	if err != nil {
		return 0, fmt.Errorf("bad -guard pattern: %w", err)
	}
	oldMed, err := medians(oldPath)
	if err != nil {
		return 0, err
	}
	newMed, err := medians(newPath)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(newMed))
	for name := range newMed {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no benchmark in %s matches guard %q", newPath, guardPat)
	}
	regressions := 0
	for _, name := range names {
		base, ok := oldMed[name]
		if !ok {
			fmt.Fprintf(out, "skip  %-50s no baseline (new benchmark)\n", name)
			continue
		}
		delta := newMed[name]/base - 1
		verdict := "ok   "
		if delta > maxRegress {
			verdict = "REGRESS"
			regressions++
		}
		fmt.Fprintf(out, "%s %-50s %12.2f -> %12.2f ns/op  %+6.1f%%\n",
			verdict, name, base, newMed[name], delta*100)
	}
	return regressions, nil
}
