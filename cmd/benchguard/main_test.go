package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, path string, samples string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(`{"samples":[`+samples+`]}`), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGuardMediansAndThreshold(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	// Baseline: stable at 100 with one outlier the median must ignore.
	writeReport(t, oldP, `
		{"name":"BenchmarkA","ns_per_op":100},
		{"name":"BenchmarkA","ns_per_op":101},
		{"name":"BenchmarkA","ns_per_op":900},
		{"name":"BenchmarkB","ns_per_op":50},
		{"name":"BenchmarkUnguarded","ns_per_op":10}`)
	// Fresh: A within bounds (one noisy sample), B regressed 2x,
	// Unguarded regressed but not matched, C has no baseline.
	writeReport(t, newP, `
		{"name":"BenchmarkA","ns_per_op":110},
		{"name":"BenchmarkA","ns_per_op":112},
		{"name":"BenchmarkA","ns_per_op":5000},
		{"name":"BenchmarkB","ns_per_op":100},
		{"name":"BenchmarkUnguarded","ns_per_op":100},
		{"name":"BenchmarkC","ns_per_op":1}`)

	var out bytes.Buffer
	n, err := guard(oldP, newP, `^Benchmark(A|B|C)$`, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1 (only B):\n%s", n, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "REGRESS BenchmarkB") {
		t.Errorf("B not flagged:\n%s", text)
	}
	if !strings.Contains(text, "ok    BenchmarkA") {
		t.Errorf("A should pass on median:\n%s", text)
	}
	if !strings.Contains(text, "skip  BenchmarkC") {
		t.Errorf("C should be skipped without baseline:\n%s", text)
	}
	if strings.Contains(text, "Unguarded") {
		t.Errorf("unguarded benchmark leaked into report:\n%s", text)
	}
}

func TestGuardNoMatch(t *testing.T) {
	dir := t.TempDir()
	oldP, newP := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeReport(t, oldP, `{"name":"BenchmarkA","ns_per_op":1}`)
	writeReport(t, newP, `{"name":"BenchmarkA","ns_per_op":1}`)
	if _, err := guard(oldP, newP, `^BenchmarkZ$`, 0.25, &bytes.Buffer{}); err == nil {
		t.Fatal("empty guard match must error, not silently pass")
	}
}
