package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seamlesstune/internal/experiments"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-run", "F2", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiple(t *testing.T) {
	if err := run([]string{"-run", "C5, F2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-run", "ZZ"}); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run([]string{"-run", "F2", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "== F2:") {
		t.Errorf("output file missing table: %s", data)
	}
}

// -surrogate threads through to the suite and is reported on the timing
// line; unknown names fail before any experiment runs.
func TestRunSurrogateFlag(t *testing.T) {
	defer experiments.SetSurrogate("")
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := run([]string{"-run", "F2", "-surrogate", "rffgp", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "surrogate rffgp") {
		t.Errorf("timing line missing surrogate tag: %s", data)
	}
	if err := run([]string{"-run", "F2", "-surrogate", "xgboost"}); err == nil ||
		!strings.Contains(err.Error(), "gp, rffgp, forest") {
		t.Errorf("err = %v, want accepted-list error", err)
	}
}
