// Command experiments regenerates the paper's tables, figures and
// quantitative claims from the simulated substrates.
//
// Usage:
//
//	experiments -run all          # every experiment
//	experiments -run T1           # just Table I
//	experiments -run C2,C5 -seed 7
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"seamlesstune/internal/experiments"
	"seamlesstune/internal/obs"
	"seamlesstune/internal/simcache"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runIDs := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	seed := fs.Int64("seed", 1, "random seed for all simulations")
	reps := fs.Int("reps", 1, "repetitions per experiment at derived seeds, run in parallel")
	list := fs.Bool("list", false, "list experiments and exit")
	outPath := fs.String("o", "", "also write results to this file")
	traceOut := fs.String("trace-out", "", "write a Chrome trace_event JSON of the run to this file (load at chrome://tracing)")
	useCache := fs.Bool("simcache", true, "memoize repeated simulator evaluations (tables are bit-identical either way)")
	surrogateKind := fs.String("surrogate", "", "surrogate model for BayesOpt sessions: gp (exact, default), rffgp, or forest")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := experiments.SetSurrogate(*surrogateKind); err != nil {
		return err
	}
	if *useCache {
		experiments.SetSimCache(simcache.New(0))
	}

	if *traceOut != "" {
		// Experiments call the instrumented layers through many stack
		// frames with no context plumbed through, so the trace is
		// installed process-wide; every span of the run lands in one ring
		// buffer, dumped on exit.
		tracer := obs.NewTracer(1 << 17)
		obs.SetAmbient(obs.Trace{T: tracer, ID: tracer.NewTraceID()})
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
				return
			}
			defer f.Close()
			if err := obs.WriteChromeTrace(f, tracer.Spans(0)); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: trace-out:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote %d spans to %s\n", tracer.Len(), *traceOut)
		}()
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *list {
		for _, s := range experiments.All() {
			fmt.Fprintf(out, "%-3s  %s\n", s.ID, s.Title)
		}
		return nil
	}

	var specs []experiments.Spec
	if *runIDs == "all" {
		specs = experiments.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			s, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			specs = append(specs, s)
		}
	}

	for _, s := range specs {
		start := time.Now()
		cacheBefore := experiments.CacheStats()
		sp := obs.Ambient().Start(s.ID, "experiment")
		sp.Str("title", s.Title)
		if *reps > 1 {
			// Repetitions run concurrently at seeds derived from
			// (seed, experiment id, rep); output order is always rep order.
			for _, r := range experiments.Replicate(s, *seed, *reps) {
				if r.Err != nil {
					return fmt.Errorf("%s rep %d (seed %d): %w", s.ID, r.Rep, r.Seed, r.Err)
				}
				fmt.Fprintf(out, "== %s rep %d (derived seed %d) ==\n", s.ID, r.Rep, r.Seed)
				fmt.Fprintln(out, r.Table)
			}
		} else {
			table, err := s.Run(*seed)
			if err != nil {
				return fmt.Errorf("%s: %w", s.ID, err)
			}
			fmt.Fprintln(out, table)
		}
		sp.End()
		// The cache summary and surrogate tag ride on the "completed in"
		// timing line so the tables above stay byte-comparable across runs
		// and cache settings.
		fmt.Fprintf(out, "(%s completed in %v, surrogate %s%s)\n\n",
			s.ID, time.Since(start).Round(time.Millisecond), experiments.Surrogate(), cacheDelta(cacheBefore))
	}
	return nil
}

// cacheDelta renders the evaluation-cache activity since before, e.g.
// "; simcache 120 hits / 240 evals (50% hit rate)", or "" with no cache
// or no cached evaluations.
func cacheDelta(before simcache.Stats) string {
	after := experiments.CacheStats()
	hits := after.Hits - before.Hits
	total := hits + after.Misses - before.Misses
	if total == 0 {
		return ""
	}
	return fmt.Sprintf("; simcache %d hits / %d evals (%.0f%% hit rate)",
		hits, total, 100*float64(hits)/float64(total))
}
