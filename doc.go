// Package seamlesstune is a research reproduction of "Towards Seamless
// Configuration Tuning of Big Data Analytics" (Fekry et al., ICDCS 2019):
// a provider-side, fully automated configuration-tuning service for
// distributed data-processing workloads, built on a simulated Spark-like
// execution engine, a multi-provider cloud model, the tuning strategies
// the paper surveys (CherryPick, BestConfig, DAC, MROnline, Ernest, Wang
// et al., Bu et al.), cross-workload transfer learning, adaptive
// re-tuning detection, and SLO accounting.
//
// The public surface lives in the executables and examples:
//
//   - cmd/experiments regenerates every table, figure and quantitative
//     claim of the paper (see EXPERIMENTS.md);
//   - cmd/tunectl runs individual tuning sessions;
//   - cmd/tuneserve exposes tuning-as-a-service over HTTP;
//   - examples/ demonstrates the library API on four scenarios.
//
// See DESIGN.md for the system inventory and README.md for a tour.
package seamlesstune
