# seamlesstune build targets. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all check build test test-short test-race cover bench bench-substrate bench-obs bench-sim bench-prune bench-diag bench-wal bench-telemetry bench-check fuzz experiments examples vet staticcheck fmt clean

all: build vet test

# check is the tier-1 verification gate: vet, the full suite, and the
# race detector over the concurrent engine.
check: vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is advisory locally (the toolchain ships without it) and
# enforced in CI, which installs it first.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping (CI runs it)"

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per paper table/figure/claim; metrics in the output are
# the reproduction record (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem ./...

# Substrate micro-benchmarks only (simulator, GP, acquisition, encoding,
# surrogate tier), 5 samples each, recorded as JSON for regression
# tracking (see docs/PERFORMANCE.md). The warm-start pass runs one
# iteration per sample: its exact-GP arm refits a 2000-point history from
# scratch (~50s each) — the O(n³) ceiling the scalable surrogates remove.
bench-substrate:
	( $(GO) test -run '^$$' -bench 'SimulatorRun|GPFitPredict|GPPredictBatch|BayesOptStep|ConfspaceEncode|SurrogateFit|SurrogatePredict' \
		-benchmem -count=5 . ; \
	  $(GO) test -run '^$$' -bench 'BayesOptWarmStart' -benchtime 1x -count=1 . ) \
		| $(GO) run ./cmd/benchjson > BENCH_substrate.json
	@echo wrote BENCH_substrate.json

# Observability-overhead benchmarks: the cost of the hot-path metric and
# span primitives, alongside BayesOptStep as the macro-level guard that
# instrumentation stays under its <5% budget (see docs/OBSERVABILITY.md).
bench-obs:
	$(GO) test -run '^$$' -bench 'ObsOverhead|^BenchmarkBayesOptStep$$' \
		-benchmem -count=5 ./internal/obs . | $(GO) run ./cmd/benchjson > BENCH_obs.json
	@echo wrote BENCH_obs.json

# Simulator fast-path benchmarks: pooled stage execution vs the frozen
# naive reference, the memoizing evaluation cache over a full tuning
# session, and batch objective evaluation (see docs/PERFORMANCE.md).
bench-sim:
	$(GO) test -run '^$$' -bench 'SimRun|SimulatorRun|SimCacheTuning|SimBatchEval' \
		-benchmem -count=5 ./internal/spark . | $(GO) run ./cmd/benchjson > BENCH_sim.json
	@echo wrote BENCH_sim.json

# Config-space pruning benchmarks: one modelled BayesOpt step at equal
# trial count, full 41-parameter space vs the adopted significant
# subspace. The acceptance number for the pruning tier: the pruned step
# must hold a >=2x ns/op advantage (see docs/PERFORMANCE.md).
bench-prune:
	$(GO) test -run '^$$' -bench 'PrunedBayesOptStep' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson > BENCH_prune.json
	@echo wrote BENCH_prune.json

# Diagnostics-overhead benchmarks: one modelled BayesOpt step bare, with
# a decision hook, and with the full calibration monitor behind it. The
# acceptance number for the explainability tier: the hook path must stay
# within 1% of the bare step (see docs/OBSERVABILITY.md).
bench-diag:
	$(GO) test -run '^$$' -bench 'DecisionRecordOverhead' \
		-benchmem -count=5 . | $(GO) run ./cmd/benchjson > BENCH_diag.json
	@echo wrote BENCH_diag.json

# WAL persistence benchmarks: append throughput (async, sync-acked, and
# group-committed with real fsyncs), 100k-record recovery replay, and
# the snapshot-per-write baseline the WAL replaces. The acceptance
# numbers for the persistence tier: appends must beat snapshot-per-write
# at 10k-trial history by >=50x, recovery must stay well under a second
# (see docs/PERFORMANCE.md).
bench-wal:
	$(GO) test -run '^$$' -bench 'WALAppend|WALReplay|SnapshotPerWrite' \
		-benchmem -count=5 ./internal/wal | $(GO) run ./cmd/benchjson > BENCH_wal.json
	@echo wrote BENCH_wal.json

# Telemetry-tier benchmarks: the per-interval registry snapshot, range
# queries over 1h and 24h of history, and a full default-rule alert
# evaluation — alongside BayesOptStep as the denominator. The acceptance
# number for the telemetry tier: snapshot + alert eval per 1s interval
# must stay under 1% of one BayesOptStep (see docs/OBSERVABILITY.md).
bench-telemetry:
	$(GO) test -run '^$$' -bench 'TelemetrySnapshot|TelemetryRangeQuery|AlertEval|^BenchmarkBayesOptStep$$' \
		-benchmem -count=5 ./internal/telemetry . | $(GO) run ./cmd/benchjson > BENCH_telemetry.json
	@echo wrote BENCH_telemetry.json

# Short fuzz pass over the WAL record decoder — the parser that faces
# arbitrary on-disk bytes after a crash. CI runs the same smoke; longer
# runs extend -fuzztime.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeRecord' -fuzztime $(FUZZTIME) ./internal/wal

# Bench-regression smoke: rerun the guarded hot-path benchmarks and
# compare their median ns/op against the committed baselines, failing on
# a >25% regression. Fewer samples than the recording targets — this is
# a tripwire, not a measurement (see docs/OBSERVABILITY.md).
BENCHTMP ?= .benchtmp
bench-check:
	@mkdir -p $(BENCHTMP)
	$(GO) test -run '^$$' -bench 'ObsOverhead|BayesOptStep' \
		-benchmem -count=3 ./internal/obs . | $(GO) run ./cmd/benchjson > $(BENCHTMP)/obs.json
	$(GO) run ./cmd/benchguard -old BENCH_obs.json -new $(BENCHTMP)/obs.json \
		-guard 'BenchmarkObsOverhead/(counter|histogram|span|event-nosub)$$|BenchmarkBayesOptStep$$' -max-regress 0.25
	$(GO) test -run '^$$' -bench 'SimRun|SimCacheTuning|SimBatchEval' \
		-benchmem -count=3 ./internal/spark . | $(GO) run ./cmd/benchjson > $(BENCHTMP)/sim.json
	$(GO) run ./cmd/benchguard -old BENCH_sim.json -new $(BENCHTMP)/sim.json \
		-guard 'BenchmarkSimRunPooled$$|BenchmarkSimCacheTuning/|BenchmarkSimBatchEval/' -max-regress 0.25
	$(GO) test -run '^$$' -bench 'Surrogate(Fit|Predict)/(rffgp|forest)' \
		-benchmem -count=3 . | $(GO) run ./cmd/benchjson > $(BENCHTMP)/surrogate.json
	$(GO) run ./cmd/benchguard -old BENCH_substrate.json -new $(BENCHTMP)/surrogate.json \
		-guard 'BenchmarkSurrogate(Fit|Predict)/(rffgp|forest)/' -max-regress 0.25
	$(GO) test -run '^$$' -bench 'PrunedBayesOptStep' \
		-benchmem -count=3 . | $(GO) run ./cmd/benchjson > $(BENCHTMP)/prune.json
	$(GO) run ./cmd/benchguard -old BENCH_prune.json -new $(BENCHTMP)/prune.json \
		-guard 'BenchmarkPrunedBayesOptStep/(full|pruned)$$' -max-regress 0.25
	$(GO) test -run '^$$' -bench 'DecisionRecordOverhead' \
		-benchmem -count=3 . | $(GO) run ./cmd/benchjson > $(BENCHTMP)/diag.json
	$(GO) run ./cmd/benchguard -old BENCH_diag.json -new $(BENCHTMP)/diag.json \
		-guard 'BenchmarkDecisionRecordOverhead/(off|on|diagnosed)$$' -max-regress 0.25
	$(GO) test -run '^$$' -bench 'WALAppend/async$$|WALReplay' \
		-benchmem -count=3 ./internal/wal | $(GO) run ./cmd/benchjson > $(BENCHTMP)/wal.json
	$(GO) run ./cmd/benchguard -old BENCH_wal.json -new $(BENCHTMP)/wal.json \
		-guard 'BenchmarkWALAppend/async$$|BenchmarkWALReplay$$' -max-regress 0.5
	$(GO) test -run '^$$' -bench 'TelemetrySnapshot$$|AlertEval$$' \
		-benchmem -count=3 ./internal/telemetry | $(GO) run ./cmd/benchjson > $(BENCHTMP)/telemetry.json
	$(GO) run ./cmd/benchguard -old BENCH_telemetry.json -new $(BENCHTMP)/telemetry.json \
		-guard 'BenchmarkTelemetrySnapshot$$|BenchmarkAlertEval$$' -max-regress 0.25

# Regenerate every paper artifact (T1, F1-F3, C1-C12, T1X, A1).
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/retuning
	$(GO) run ./examples/transfer
	$(GO) run ./examples/slotradeoff
	$(GO) run ./examples/whatif

clean:
	$(GO) clean -testcache
	rm -rf $(BENCHTMP)
