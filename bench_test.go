package seamlesstune_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"seamlesstune/internal/cloud"
	"seamlesstune/internal/confspace"
	"seamlesstune/internal/diagnose"
	"seamlesstune/internal/experiments"
	"seamlesstune/internal/gp"
	"seamlesstune/internal/sensitivity"
	"seamlesstune/internal/simcache"
	"seamlesstune/internal/spark"
	"seamlesstune/internal/stat"
	"seamlesstune/internal/surrogate"
	"seamlesstune/internal/tuner"
	"seamlesstune/internal/workload"
)

// metricName sanitizes a dynamic label for use in b.ReportMetric units
// (no whitespace allowed).
func metricName(label, suffix string) string {
	clean := strings.NewReplacer(" ", "-", "(", "", ")", "").Replace(label)
	return clean + suffix
}

// The Benchmark* functions below regenerate the paper's artifacts — one
// benchmark per table/figure/claim (see DESIGN.md's experiment index) —
// and report the headline numbers as custom metrics so `go test -bench`
// output doubles as the reproduction record. The micro-benchmarks at the
// bottom profile the substrates themselves.

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(1, 100)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ShapeHolds() {
			b.Fatal("Table I shape criteria violated")
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.SavingDS2*100, row.Workload+"_DS2_saving_pct")
			b.ReportMetric(row.SavingDS3*100, row.Workload+"_DS3_saving_pct")
		}
	}
}

func BenchmarkFig1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Pipeline(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Improvement*100, row.Workload+"_improvement_pct")
		}
	}
}

func BenchmarkFig2Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2Architecture(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Stages)), "stages")
		b.ReportMetric(float64(res.Executors), "executors")
	}
}

func BenchmarkClaimMisconfigCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C1MisconfigCost(1, 80)
		if err != nil {
			b.Fatal(err)
		}
		maxConf, maxCluster := 0.0, 0.0
		for _, row := range res.Rows {
			if row.ConfDegradation > maxConf {
				maxConf = row.ConfDegradation
			}
			if row.ClusterDegradation > maxCluster {
				maxCluster = row.ClusterDegradation
			}
		}
		b.ReportMetric(maxConf, "max_config_degradation_x")
		b.ReportMetric(maxCluster, "max_cluster_degradation_x")
	}
}

func BenchmarkTunerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C2TunerComparison(1, 120)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Improvement*100, row.Tuner+"_improvement_pct")
		}
	}
}

func BenchmarkSearchSpaceGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C3SearchSpaceGrowth(1, 40)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Dims == 30 {
				b.ReportMetric(row.Log10Size, "log10_space_30params")
			}
		}
	}
}

func BenchmarkCostAmortization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C4CostAmortization(1)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.TuningCostUSD, "tuning_bill_500runs_usd")
		b.ReportMetric(float64(last.RunsToAmortize), "runs_to_amortize_500")
	}
}

func BenchmarkRetuneDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C5RetuneDetection(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.DetectionRate*100, row.Detector+"_detect_pct")
			b.ReportMetric(row.FalseAlarms*100, row.Detector+"_false_pct")
		}
	}
}

func BenchmarkTransferLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C6TransferLearning(1, 25)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.WarmTo15 >= 0 {
				b.ReportMetric(float64(row.WarmTo15), row.Target+"_warm_execs_to_15pct")
			}
			if row.ColdTo15 >= 0 {
				b.ReportMetric(float64(row.ColdTo15), row.Target+"_cold_execs_to_15pct")
			}
		}
	}
}

func BenchmarkSLOEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C7SLOEfficiency(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.GapAt[len(row.GapAt)-1]*100, row.Workload+"_final_gap_pct")
		}
	}
}

func BenchmarkAdditiveGPInterpret(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C8AdditiveGPInterpret(1, 80)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Top3Overlap), "top3_overlap")
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func benchCluster(b *testing.B) cloud.ClusterSpec {
	b.Helper()
	it, err := cloud.DefaultCatalog().Lookup("nimbus/h1.4xlarge")
	if err != nil {
		b.Fatal(err)
	}
	return cloud.ClusterSpec{Instance: it, Count: 4}
}

func BenchmarkSimulatorRunPageRank(b *testing.B) {
	b.ReportAllocs()
	cluster := benchCluster(b)
	space := confspace.SparkSpace()
	conf := spark.FromConfig(space, space.Default())
	conf.ExecutorInstances = 8
	conf.ExecutorCores = 8
	conf.ExecutorMemoryMB = 16384
	conf.DriverMemoryMB = 4096
	conf.DefaultParallelism = 128
	job := workload.PageRank{}.Job(8 << 30)
	rng := stat.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spark.Run(job, conf, cluster, cloud.Unit(), rng)
		if res.Failed {
			b.Fatal(res.Reason)
		}
	}
}

func BenchmarkSimulatorRunWordcount(b *testing.B) {
	b.ReportAllocs()
	cluster := benchCluster(b)
	space := confspace.SparkSpace()
	conf := spark.FromConfig(space, space.Default())
	conf.ExecutorInstances = 8
	conf.ExecutorCores = 8
	conf.ExecutorMemoryMB = 16384
	conf.DriverMemoryMB = 4096
	job := workload.Wordcount{}.Job(8 << 30)
	rng := stat.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := spark.Run(job, conf, cluster, cloud.Unit(), rng)
		if res.Failed {
			b.Fatal(res.Reason)
		}
	}
}

func BenchmarkGPFitPredict(b *testing.B) {
	b.ReportAllocs()
	rng := stat.NewRNG(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 10*x[0]+5*x[1]*x[1]+rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gp.FitWithHypers(gp.KindMatern52, xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		g.Predict([]float64{0.5, 0.5, 0.5, 0.5})
	}
}

func BenchmarkBayesOptStep(b *testing.B) {
	b.ReportAllocs()
	space := confspace.SparkSubspace(12)
	cluster := benchCluster(b)
	job := workload.Sort{}.Job(4 << 30)
	rng := stat.NewRNG(1)
	bo := tuner.NewBayesOpt(space)
	obj := func(cfg confspace.Config) tuner.Measurement {
		res := spark.Run(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), rng)
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}
	// Pre-warm the model so the benchmark measures the modelled path.
	for i := 0; i < 12; i++ {
		cfg := bo.Next(rng)
		m := obj(cfg)
		bo.Observe(tuner.Trial{Index: i, Config: cfg, Measurement: m, Objective: m.Runtime})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := bo.Next(rng)
		m := obj(cfg)
		bo.Observe(tuner.Trial{Index: 12 + i, Config: cfg, Measurement: m, Objective: m.Runtime})
	}
}

func BenchmarkGPPredictBatch(b *testing.B) {
	b.ReportAllocs()
	rng := stat.NewRNG(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 10*x[0]+5*x[1]*x[1]+rng.NormFloat64())
	}
	g, err := gp.FitWithHypers(gp.KindMatern52, xs, ys)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([][]float64, 500)
	for i := range qs {
		qs[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PredictBatch(qs)
	}
}

func BenchmarkConfspaceEncode(b *testing.B) {
	b.ReportAllocs()
	space := confspace.SparkSpace()
	rng := stat.NewRNG(1)
	cfg := space.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Encode(cfg)
	}
}

func BenchmarkWhatIfAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C9WhatIfAccuracy(1, 15)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MAPE*100, row.Workload+"_mape_pct")
		}
	}
}

func BenchmarkParisVMSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C10ParisVMSelection(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.ParisRuntime/row.BestRuntime, row.Workload+"_paris_vs_best")
		}
	}
}

func BenchmarkTableIAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.A1TableIAblation(1, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.SavingDS3*100, metricName(row.Ablation, "_saving_pct"))
		}
	}
}

func BenchmarkDACComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C11DACComparison(1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.CostUSD, metricName(row.Strategy, "_bill_usd"))
		}
	}
}

func BenchmarkTable1Extension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1Extension(1, 60)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.SavingDS3*100, row.Workload+"_DS3_saving_pct")
		}
	}
}

func BenchmarkTuningUnderInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.C12TuningUnderInterference(1, 30)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RegretPct*100, row.Level+"_regret_pct")
		}
	}
}

func BenchmarkSeamlessLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.F3SeamlessLifecycle(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalStaticS-res.TotalManagedS, "production_seconds_saved")
		b.ReportMetric(res.TuningCostUSD, "provider_bill_usd")
	}
}

// BenchmarkSimCacheTuning measures a full genetic tuning session over the
// Spark simulator with and without the evaluation cache. Genetic search
// re-proposes elite configurations every generation, and a long-lived
// service replays whole sessions, so the cached variant converges to
// near-total hit rates; the two variants produce bit-identical
// trajectories (internal/simcache property tests).
func BenchmarkSimCacheTuning(b *testing.B) {
	cluster := benchCluster(b)
	space := confspace.SparkSpace()
	job := workload.PageRank{}.Job(8 << 30)
	run := func(b *testing.B, cache *simcache.Cache) {
		b.ReportAllocs()
		obj := func(cfg confspace.Config, seed int64) tuner.Measurement {
			res := cache.Run(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), spark.RunOpts{}, seed)
			return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := tuner.NewGenetic(space)
			if _, err := tuner.RunBatch(context.Background(), g, obj, 80, stat.NewRNG(1), tuner.BatchOptions{Workers: 1, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
		if cache != nil {
			b.ReportMetric(cache.Stats().HitRate()*100, "hit_rate_pct")
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, simcache.New(0)) })
}

// BenchmarkSimBatchEval measures the batch objective evaluator fanning a
// fixed candidate set over the worker pool.
func BenchmarkSimBatchEval(b *testing.B) {
	cluster := benchCluster(b)
	space := confspace.SparkSpace()
	job := workload.PageRank{}.Job(8 << 30)
	rng := stat.NewRNG(1)
	cfgs := make([]confspace.Config, 32)
	for i := range cfgs {
		cfgs[i] = space.Random(rng)
	}
	obj := func(cfg confspace.Config, seed int64) tuner.Measurement {
		res := spark.RunWith(job, spark.FromConfig(space, cfg), cluster, cloud.Unit(), spark.RunOpts{}, stat.NewRNG(seed))
		return tuner.Measurement{Runtime: res.RuntimeS, Cost: res.CostUSD, Failed: res.Failed}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tuner.EvaluateBatch(obj, cfgs, 1, workers)
			}
		})
	}
}

// BenchmarkSimRunCached measures a warm evaluation-cache hit for a single
// simulated execution — the steady-state cost of re-requesting a
// configuration point the service has already paid for.
func BenchmarkSimRunCached(b *testing.B) {
	b.ReportAllocs()
	cluster := benchCluster(b)
	space := confspace.SparkSpace()
	conf := spark.FromConfig(space, space.Default())
	conf.ExecutorInstances = 8
	conf.ExecutorCores = 8
	conf.ExecutorMemoryMB = 16384
	conf.DriverMemoryMB = 4096
	conf.DefaultParallelism = 128
	job := workload.PageRank{}.Job(8 << 30)
	cache := simcache.New(0)
	if res := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 1); res.Failed {
		b.Fatal(res.Reason)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cache.Run(job, conf, cluster, cloud.Unit(), spark.RunOpts{}, 1)
		if res.Failed {
			b.Fatal(res.Reason)
		}
	}
}

// surrogateData draws n noisy observations of a quadratic bowl over the
// dim-dimensional unit cube — the shape of a tuning history.
func surrogateData(n, dim int) ([][]float64, []float64) {
	rng := stat.NewRNG(7)
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, dim)
		y := 0.0
		for d := range x {
			x[d] = rng.Float64()
			y += (x[d] - 0.5) * (x[d] - 0.5)
		}
		xs[i] = x
		ys[i] = 20*y + 0.5*rng.NormFloat64()
	}
	return xs, ys
}

// BenchmarkSurrogateFit profiles a from-scratch fit per backend across
// history sizes. The exact GP is skipped at n=10000: its O(n³) hyper
// grid takes minutes per fit there — the ceiling the scalable backends
// exist to remove (see docs/PERFORMANCE.md).
func BenchmarkSurrogateFit(b *testing.B) {
	for _, kind := range surrogate.Names() {
		for _, n := range []int{100, 1000, 10000} {
			if kind == surrogate.KindGP && n > 1000 {
				continue
			}
			xs, ys := surrogateData(n, 8)
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := surrogate.New(surrogate.Config{Kind: kind, Seed: 1})
					if err != nil {
						b.Fatal(err)
					}
					if err := m.Fit(xs, ys); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSurrogatePredict profiles a 500-point posterior batch over a
// model fitted on 1000 observations — the acquisition hot path.
func BenchmarkSurrogatePredict(b *testing.B) {
	xs, ys := surrogateData(1000, 8)
	qs, _ := surrogateData(500, 8)
	for _, kind := range surrogate.Names() {
		b.Run(kind+"/batch=500", func(b *testing.B) {
			// Fit inside the sub-benchmark so filtered-out backends never
			// pay their fit cost (the exact GP's is seconds at n=1000).
			m, err := surrogate.New(surrogate.Config{Kind: kind, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Fit(xs, ys); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.PredictBatch(qs)
			}
		})
	}
}

// BenchmarkPrunedBayesOptStep is the acceptance number for the pruning
// tier (make bench-prune, BENCH_prune.json): one modelled BayesOpt step
// — surrogate fit plus acquisition argmax — at equal trial count over
// the full 41-parameter Spark space, full-space versus the significant
// subspace a pruning session adopts. The sensitivity analysis itself re-runs only
// every k trials, so the per-step comparison below is what dominates a
// session; the pruned step must come out >=2x faster.
func BenchmarkPrunedBayesOptStep(b *testing.B) {
	const dims = 41
	const warmN = 40
	space := confspace.SparkSubspace(dims)
	rng := stat.NewRNG(5)
	// A session history whose objective is dominated by the first three
	// encoded knobs — the shape pruning exists for.
	trials := make([]tuner.Trial, warmN)
	for i := range trials {
		cfg := space.Random(rng)
		e := space.Encode(cfg)
		y := 120 - 50*e[0] - 30*e[1]*e[1] - 10*e[2] + 0.5*rng.NormFloat64()
		trials[i] = tuner.Trial{Index: i, Config: cfg, Measurement: tuner.Measurement{Runtime: y}, Objective: y}
	}
	// Drive a pruning session over the history until it adopts a subspace.
	pb := tuner.NewPrunedBayesOpt(space)
	pb.Prune = sensitivity.Config{Seed: 7, Every: 4, MinSamples: 32}
	for _, tr := range trials {
		pb.Observe(tr)
	}
	sub := pb.Subspace()
	if sub == nil || sub.Dim() >= dims {
		b.Fatalf("session did not prune: %s", pb.Describe())
	}
	proj := make([]tuner.Trial, len(trials))
	for i, tr := range trials {
		p := tr
		p.Config = sub.Project(tr.Config)
		proj[i] = p
	}
	step := func(sp *confspace.Space, warm []tuner.Trial) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bo := tuner.NewBayesOpt(sp)
				bo.WarmStart = warm
				bo.Next(stat.NewRNG(6))
			}
			b.ReportMetric(float64(sp.Dim()), "dims")
		}
	}
	b.Run("full", step(space, trials))
	b.Run("pruned", step(sub.Space(), proj))
}

// BenchmarkBayesOptWarmStart measures session startup against a large
// transferred history: absorb 2000 warm-start trials, fit the surrogate,
// and propose the first configuration. This is the acceptance number for
// the surrogate tier — the scalable backends must beat the exact GP by
// an order of magnitude here.
func BenchmarkBayesOptWarmStart(b *testing.B) {
	const n = 2000
	space := confspace.SparkSubspace(12)
	rng := stat.NewRNG(3)
	warm := make([]tuner.Trial, n)
	for i := range warm {
		cfg := space.Random(rng)
		y := 0.0
		for _, e := range space.Encode(cfg) {
			y += (e - 0.7) * (e - 0.7)
		}
		y = 20*y + 0.5*rng.NormFloat64()
		warm[i] = tuner.Trial{Index: i, Config: cfg, Measurement: tuner.Measurement{Runtime: y}, Objective: y}
	}
	for _, kind := range surrogate.Names() {
		b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bo := tuner.NewBayesOpt(space)
				bo.Surrogate = kind
				bo.SurrogateSeed = stat.DeriveSeed(3, "surrogate")
				bo.WarmStart = warm
				bo.Next(stat.NewRNG(4))
			}
		})
	}
}

// BenchmarkDecisionRecordOverhead prices the explainability layer: one
// modelled BayesOpt step (fresh fit over a fixed 30-trial history, one
// proposal) bare, with a decision hook installed, and with the full
// diagnostics consumer (decision record â calibration monitor â trial
// scoring) behind it. The acceptance number for the introspection tier:
// the hook path must stay within 1% of the bare step (see
// docs/OBSERVABILITY.md), since every EI-guided proposal in every
// session pays it.
func BenchmarkDecisionRecordOverhead(b *testing.B) {
	const warmN = 30
	space := confspace.SparkSubspace(12)
	rng := stat.NewRNG(1)
	warm := make([]tuner.Trial, warmN)
	for i := range warm {
		cfg := space.Random(rng)
		y := 0.0
		for _, e := range space.Encode(cfg) {
			y += (e - 0.7) * (e - 0.7)
		}
		y = 20*y + 0.5*rng.NormFloat64()
		warm[i] = tuner.Trial{Index: i, Config: cfg, Measurement: tuner.Measurement{Runtime: y}, Objective: y}
	}
	step := func(attach func(*tuner.BayesOpt) func()) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bo := tuner.NewBayesOpt(space)
				bo.WarmStart = warm
				after := attach(bo)
				bo.Next(stat.NewRNG(2))
				if after != nil {
					after()
				}
			}
		}
	}
	b.Run("off", step(func(*tuner.BayesOpt) func() { return nil }))
	var sink tuner.DecisionRecord
	b.Run("on", step(func(bo *tuner.BayesOpt) func() {
		bo.SetDecisionHook(func(r tuner.DecisionRecord) { sink = r })
		return nil
	}))
	// The full consumer, including scoring the proposal against an
	// observed outcome â what a diagnosed session pays per trial.
	mon := diagnose.New(diagnose.Config{})
	b.Run("diagnosed", step(func(bo *tuner.BayesOpt) func() {
		bo.SetDecisionHook(func(r tuner.DecisionRecord) {
			mon.OnDecision(r.Chosen.Mean, r.Chosen.Std, r.Chosen.EI)
		})
		return func() {
			mon.OnTrial(tuner.ModelTarget(42), false)
		}
	}))
	_ = sink
}
